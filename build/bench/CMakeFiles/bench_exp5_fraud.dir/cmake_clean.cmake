file(REMOVE_RECURSE
  "CMakeFiles/bench_exp5_fraud.dir/bench_exp5_fraud.cc.o"
  "CMakeFiles/bench_exp5_fraud.dir/bench_exp5_fraud.cc.o.d"
  "bench_exp5_fraud"
  "bench_exp5_fraud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp5_fraud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
