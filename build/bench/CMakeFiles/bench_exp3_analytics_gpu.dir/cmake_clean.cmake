file(REMOVE_RECURSE
  "CMakeFiles/bench_exp3_analytics_gpu.dir/bench_exp3_analytics_gpu.cc.o"
  "CMakeFiles/bench_exp3_analytics_gpu.dir/bench_exp3_analytics_gpu.cc.o.d"
  "bench_exp3_analytics_gpu"
  "bench_exp3_analytics_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp3_analytics_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
