file(REMOVE_RECURSE
  "CMakeFiles/bench_exp4_learning_scaleout.dir/bench_exp4_learning_scaleout.cc.o"
  "CMakeFiles/bench_exp4_learning_scaleout.dir/bench_exp4_learning_scaleout.cc.o.d"
  "bench_exp4_learning_scaleout"
  "bench_exp4_learning_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp4_learning_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
