# Empty compiler generated dependencies file for bench_exp1_graphar_load.
# This may be replaced when dependencies are built.
