file(REMOVE_RECURSE
  "CMakeFiles/bench_exp1_graphar_load.dir/bench_exp1_graphar_load.cc.o"
  "CMakeFiles/bench_exp1_graphar_load.dir/bench_exp1_graphar_load.cc.o.d"
  "bench_exp1_graphar_load"
  "bench_exp1_graphar_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp1_graphar_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
