# Empty dependencies file for bench_exp2_query_opt.
# This may be replaced when dependencies are built.
