file(REMOVE_RECURSE
  "CMakeFiles/bench_exp2_query_opt.dir/bench_exp2_query_opt.cc.o"
  "CMakeFiles/bench_exp2_query_opt.dir/bench_exp2_query_opt.cc.o.d"
  "bench_exp2_query_opt"
  "bench_exp2_query_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp2_query_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
