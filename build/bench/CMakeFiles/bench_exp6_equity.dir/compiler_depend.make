# Empty compiler generated dependencies file for bench_exp6_equity.
# This may be replaced when dependencies are built.
