file(REMOVE_RECURSE
  "CMakeFiles/bench_exp6_equity.dir/bench_exp6_equity.cc.o"
  "CMakeFiles/bench_exp6_equity.dir/bench_exp6_equity.cc.o.d"
  "bench_exp6_equity"
  "bench_exp6_equity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp6_equity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
