file(REMOVE_RECURSE
  "CMakeFiles/bench_exp2_snb_bi.dir/bench_exp2_snb_bi.cc.o"
  "CMakeFiles/bench_exp2_snb_bi.dir/bench_exp2_snb_bi.cc.o.d"
  "bench_exp2_snb_bi"
  "bench_exp2_snb_bi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp2_snb_bi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
