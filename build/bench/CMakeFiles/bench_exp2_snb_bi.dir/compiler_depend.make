# Empty compiler generated dependencies file for bench_exp2_snb_bi.
# This may be replaced when dependencies are built.
