
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_exp3_analytics_cpu.cc" "bench/CMakeFiles/bench_exp3_analytics_cpu.dir/bench_exp3_analytics_cpu.cc.o" "gcc" "bench/CMakeFiles/bench_exp3_analytics_cpu.dir/bench_exp3_analytics_cpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grape/CMakeFiles/flex_grape.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/flex_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/flex_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/flex_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
