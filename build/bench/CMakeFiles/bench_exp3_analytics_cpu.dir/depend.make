# Empty dependencies file for bench_exp3_analytics_cpu.
# This may be replaced when dependencies are built.
