file(REMOVE_RECURSE
  "CMakeFiles/bench_exp3_analytics_cpu.dir/bench_exp3_analytics_cpu.cc.o"
  "CMakeFiles/bench_exp3_analytics_cpu.dir/bench_exp3_analytics_cpu.cc.o.d"
  "bench_exp3_analytics_cpu"
  "bench_exp3_analytics_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp3_analytics_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
