# Empty dependencies file for bench_exp7_ncn.
# This may be replaced when dependencies are built.
