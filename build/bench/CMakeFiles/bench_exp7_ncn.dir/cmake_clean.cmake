file(REMOVE_RECURSE
  "CMakeFiles/bench_exp7_ncn.dir/bench_exp7_ncn.cc.o"
  "CMakeFiles/bench_exp7_ncn.dir/bench_exp7_ncn.cc.o.d"
  "bench_exp7_ncn"
  "bench_exp7_ncn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp7_ncn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
