# Empty dependencies file for bench_exp1_grin_backends.
# This may be replaced when dependencies are built.
