file(REMOVE_RECURSE
  "CMakeFiles/bench_exp1_grin_backends.dir/bench_exp1_grin_backends.cc.o"
  "CMakeFiles/bench_exp1_grin_backends.dir/bench_exp1_grin_backends.cc.o.d"
  "bench_exp1_grin_backends"
  "bench_exp1_grin_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp1_grin_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
