# Empty dependencies file for bench_exp4_learning_scaleup.
# This may be replaced when dependencies are built.
