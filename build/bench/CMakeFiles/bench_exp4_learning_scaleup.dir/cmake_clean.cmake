file(REMOVE_RECURSE
  "CMakeFiles/bench_exp4_learning_scaleup.dir/bench_exp4_learning_scaleup.cc.o"
  "CMakeFiles/bench_exp4_learning_scaleup.dir/bench_exp4_learning_scaleup.cc.o.d"
  "bench_exp4_learning_scaleup"
  "bench_exp4_learning_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp4_learning_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
