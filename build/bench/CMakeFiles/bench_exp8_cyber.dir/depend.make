# Empty dependencies file for bench_exp8_cyber.
# This may be replaced when dependencies are built.
