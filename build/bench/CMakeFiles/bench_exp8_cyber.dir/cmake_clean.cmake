file(REMOVE_RECURSE
  "CMakeFiles/bench_exp8_cyber.dir/bench_exp8_cyber.cc.o"
  "CMakeFiles/bench_exp8_cyber.dir/bench_exp8_cyber.cc.o.d"
  "bench_exp8_cyber"
  "bench_exp8_cyber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp8_cyber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
