# Empty dependencies file for flex_ir.
# This may be replaced when dependencies are built.
