
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/expr.cc" "src/ir/CMakeFiles/flex_ir.dir/expr.cc.o" "gcc" "src/ir/CMakeFiles/flex_ir.dir/expr.cc.o.d"
  "/root/repo/src/ir/plan.cc" "src/ir/CMakeFiles/flex_ir.dir/plan.cc.o" "gcc" "src/ir/CMakeFiles/flex_ir.dir/plan.cc.o.d"
  "/root/repo/src/ir/row.cc" "src/ir/CMakeFiles/flex_ir.dir/row.cc.o" "gcc" "src/ir/CMakeFiles/flex_ir.dir/row.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/flex_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/grin/CMakeFiles/flex_grin.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
