file(REMOVE_RECURSE
  "CMakeFiles/flex_ir.dir/expr.cc.o"
  "CMakeFiles/flex_ir.dir/expr.cc.o.d"
  "CMakeFiles/flex_ir.dir/plan.cc.o"
  "CMakeFiles/flex_ir.dir/plan.cc.o.d"
  "CMakeFiles/flex_ir.dir/row.cc.o"
  "CMakeFiles/flex_ir.dir/row.cc.o.d"
  "libflex_ir.a"
  "libflex_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
