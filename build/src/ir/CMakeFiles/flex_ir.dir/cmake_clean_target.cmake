file(REMOVE_RECURSE
  "libflex_ir.a"
)
