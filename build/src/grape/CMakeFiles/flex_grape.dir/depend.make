# Empty dependencies file for flex_grape.
# This may be replaced when dependencies are built.
