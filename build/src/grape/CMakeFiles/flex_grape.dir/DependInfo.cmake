
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grape/apps/cdlp.cc" "src/grape/CMakeFiles/flex_grape.dir/apps/cdlp.cc.o" "gcc" "src/grape/CMakeFiles/flex_grape.dir/apps/cdlp.cc.o.d"
  "/root/repo/src/grape/apps/equity.cc" "src/grape/CMakeFiles/flex_grape.dir/apps/equity.cc.o" "gcc" "src/grape/CMakeFiles/flex_grape.dir/apps/equity.cc.o.d"
  "/root/repo/src/grape/apps/kcore.cc" "src/grape/CMakeFiles/flex_grape.dir/apps/kcore.cc.o" "gcc" "src/grape/CMakeFiles/flex_grape.dir/apps/kcore.cc.o.d"
  "/root/repo/src/grape/apps/pagerank.cc" "src/grape/CMakeFiles/flex_grape.dir/apps/pagerank.cc.o" "gcc" "src/grape/CMakeFiles/flex_grape.dir/apps/pagerank.cc.o.d"
  "/root/repo/src/grape/apps/traversal.cc" "src/grape/CMakeFiles/flex_grape.dir/apps/traversal.cc.o" "gcc" "src/grape/CMakeFiles/flex_grape.dir/apps/traversal.cc.o.d"
  "/root/repo/src/grape/flash.cc" "src/grape/CMakeFiles/flex_grape.dir/flash.cc.o" "gcc" "src/grape/CMakeFiles/flex_grape.dir/flash.cc.o.d"
  "/root/repo/src/grape/fragment.cc" "src/grape/CMakeFiles/flex_grape.dir/fragment.cc.o" "gcc" "src/grape/CMakeFiles/flex_grape.dir/fragment.cc.o.d"
  "/root/repo/src/grape/ingress.cc" "src/grape/CMakeFiles/flex_grape.dir/ingress.cc.o" "gcc" "src/grape/CMakeFiles/flex_grape.dir/ingress.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/flex_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
