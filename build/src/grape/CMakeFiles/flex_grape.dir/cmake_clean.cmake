file(REMOVE_RECURSE
  "CMakeFiles/flex_grape.dir/apps/cdlp.cc.o"
  "CMakeFiles/flex_grape.dir/apps/cdlp.cc.o.d"
  "CMakeFiles/flex_grape.dir/apps/equity.cc.o"
  "CMakeFiles/flex_grape.dir/apps/equity.cc.o.d"
  "CMakeFiles/flex_grape.dir/apps/kcore.cc.o"
  "CMakeFiles/flex_grape.dir/apps/kcore.cc.o.d"
  "CMakeFiles/flex_grape.dir/apps/pagerank.cc.o"
  "CMakeFiles/flex_grape.dir/apps/pagerank.cc.o.d"
  "CMakeFiles/flex_grape.dir/apps/traversal.cc.o"
  "CMakeFiles/flex_grape.dir/apps/traversal.cc.o.d"
  "CMakeFiles/flex_grape.dir/flash.cc.o"
  "CMakeFiles/flex_grape.dir/flash.cc.o.d"
  "CMakeFiles/flex_grape.dir/fragment.cc.o"
  "CMakeFiles/flex_grape.dir/fragment.cc.o.d"
  "CMakeFiles/flex_grape.dir/ingress.cc.o"
  "CMakeFiles/flex_grape.dir/ingress.cc.o.d"
  "libflex_grape.a"
  "libflex_grape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_grape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
