file(REMOVE_RECURSE
  "libflex_grape.a"
)
