file(REMOVE_RECURSE
  "libflex_learn.a"
)
