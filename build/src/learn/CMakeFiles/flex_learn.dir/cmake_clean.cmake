file(REMOVE_RECURSE
  "CMakeFiles/flex_learn.dir/pipeline.cc.o"
  "CMakeFiles/flex_learn.dir/pipeline.cc.o.d"
  "CMakeFiles/flex_learn.dir/sampler.cc.o"
  "CMakeFiles/flex_learn.dir/sampler.cc.o.d"
  "CMakeFiles/flex_learn.dir/tensor.cc.o"
  "CMakeFiles/flex_learn.dir/tensor.cc.o.d"
  "libflex_learn.a"
  "libflex_learn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_learn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
