# Empty compiler generated dependencies file for flex_learn.
# This may be replaced when dependencies are built.
