# Empty compiler generated dependencies file for flex_datagen.
# This may be replaced when dependencies are built.
