file(REMOVE_RECURSE
  "libflex_datagen.a"
)
