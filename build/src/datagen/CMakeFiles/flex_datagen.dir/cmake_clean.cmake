file(REMOVE_RECURSE
  "CMakeFiles/flex_datagen.dir/generators.cc.o"
  "CMakeFiles/flex_datagen.dir/generators.cc.o.d"
  "CMakeFiles/flex_datagen.dir/registry.cc.o"
  "CMakeFiles/flex_datagen.dir/registry.cc.o.d"
  "libflex_datagen.a"
  "libflex_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
