file(REMOVE_RECURSE
  "CMakeFiles/flex_baselines.dir/analytics_baselines.cc.o"
  "CMakeFiles/flex_baselines.dir/analytics_baselines.cc.o.d"
  "CMakeFiles/flex_baselines.dir/relational.cc.o"
  "CMakeFiles/flex_baselines.dir/relational.cc.o.d"
  "libflex_baselines.a"
  "libflex_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
