file(REMOVE_RECURSE
  "libflex_baselines.a"
)
