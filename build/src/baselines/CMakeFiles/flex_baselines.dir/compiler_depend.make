# Empty compiler generated dependencies file for flex_baselines.
# This may be replaced when dependencies are built.
