file(REMOVE_RECURSE
  "libflex_snb.a"
)
