# Empty compiler generated dependencies file for flex_snb.
# This may be replaced when dependencies are built.
