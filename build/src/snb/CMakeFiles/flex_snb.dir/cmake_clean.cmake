file(REMOVE_RECURSE
  "CMakeFiles/flex_snb.dir/generator.cc.o"
  "CMakeFiles/flex_snb.dir/generator.cc.o.d"
  "CMakeFiles/flex_snb.dir/schema.cc.o"
  "CMakeFiles/flex_snb.dir/schema.cc.o.d"
  "CMakeFiles/flex_snb.dir/workloads.cc.o"
  "CMakeFiles/flex_snb.dir/workloads.cc.o.d"
  "libflex_snb.a"
  "libflex_snb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_snb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
