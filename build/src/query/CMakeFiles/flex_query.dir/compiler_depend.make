# Empty compiler generated dependencies file for flex_query.
# This may be replaced when dependencies are built.
