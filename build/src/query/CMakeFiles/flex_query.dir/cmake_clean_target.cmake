file(REMOVE_RECURSE
  "libflex_query.a"
)
