file(REMOVE_RECURSE
  "CMakeFiles/flex_query.dir/service.cc.o"
  "CMakeFiles/flex_query.dir/service.cc.o.d"
  "libflex_query.a"
  "libflex_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
