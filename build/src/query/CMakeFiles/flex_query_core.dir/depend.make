# Empty dependencies file for flex_query_core.
# This may be replaced when dependencies are built.
