file(REMOVE_RECURSE
  "libflex_query_core.a"
)
