file(REMOVE_RECURSE
  "CMakeFiles/flex_query_core.dir/interpreter.cc.o"
  "CMakeFiles/flex_query_core.dir/interpreter.cc.o.d"
  "libflex_query_core.a"
  "libflex_query_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_query_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
