# Empty compiler generated dependencies file for flex_grin.
# This may be replaced when dependencies are built.
