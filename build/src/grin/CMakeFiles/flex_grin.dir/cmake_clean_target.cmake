file(REMOVE_RECURSE
  "libflex_grin.a"
)
