file(REMOVE_RECURSE
  "CMakeFiles/flex_grin.dir/grin.cc.o"
  "CMakeFiles/flex_grin.dir/grin.cc.o.d"
  "libflex_grin.a"
  "libflex_grin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_grin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
