# Empty compiler generated dependencies file for flex_graph.
# This may be replaced when dependencies are built.
