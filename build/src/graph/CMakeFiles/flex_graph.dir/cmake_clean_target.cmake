file(REMOVE_RECURSE
  "libflex_graph.a"
)
