file(REMOVE_RECURSE
  "CMakeFiles/flex_graph.dir/csr.cc.o"
  "CMakeFiles/flex_graph.dir/csr.cc.o.d"
  "CMakeFiles/flex_graph.dir/partitioner.cc.o"
  "CMakeFiles/flex_graph.dir/partitioner.cc.o.d"
  "CMakeFiles/flex_graph.dir/property.cc.o"
  "CMakeFiles/flex_graph.dir/property.cc.o.d"
  "CMakeFiles/flex_graph.dir/property_table.cc.o"
  "CMakeFiles/flex_graph.dir/property_table.cc.o.d"
  "CMakeFiles/flex_graph.dir/schema.cc.o"
  "CMakeFiles/flex_graph.dir/schema.cc.o.d"
  "libflex_graph.a"
  "libflex_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
