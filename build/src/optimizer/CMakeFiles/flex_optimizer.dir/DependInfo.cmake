
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/catalog.cc" "src/optimizer/CMakeFiles/flex_optimizer.dir/catalog.cc.o" "gcc" "src/optimizer/CMakeFiles/flex_optimizer.dir/catalog.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/flex_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/flex_optimizer.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/flex_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/grin/CMakeFiles/flex_grin.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/flex_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
