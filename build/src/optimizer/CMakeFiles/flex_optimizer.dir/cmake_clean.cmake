file(REMOVE_RECURSE
  "CMakeFiles/flex_optimizer.dir/catalog.cc.o"
  "CMakeFiles/flex_optimizer.dir/catalog.cc.o.d"
  "CMakeFiles/flex_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/flex_optimizer.dir/optimizer.cc.o.d"
  "libflex_optimizer.a"
  "libflex_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
