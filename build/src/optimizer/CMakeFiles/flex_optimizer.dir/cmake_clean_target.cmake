file(REMOVE_RECURSE
  "libflex_optimizer.a"
)
