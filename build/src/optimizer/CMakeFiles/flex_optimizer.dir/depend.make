# Empty dependencies file for flex_optimizer.
# This may be replaced when dependencies are built.
