file(REMOVE_RECURSE
  "libflex_common.a"
)
