# Empty compiler generated dependencies file for flex_common.
# This may be replaced when dependencies are built.
