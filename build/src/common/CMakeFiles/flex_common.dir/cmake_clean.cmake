file(REMOVE_RECURSE
  "CMakeFiles/flex_common.dir/logging.cc.o"
  "CMakeFiles/flex_common.dir/logging.cc.o.d"
  "CMakeFiles/flex_common.dir/status.cc.o"
  "CMakeFiles/flex_common.dir/status.cc.o.d"
  "CMakeFiles/flex_common.dir/string_util.cc.o"
  "CMakeFiles/flex_common.dir/string_util.cc.o.d"
  "CMakeFiles/flex_common.dir/thread_pool.cc.o"
  "CMakeFiles/flex_common.dir/thread_pool.cc.o.d"
  "libflex_common.a"
  "libflex_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
