file(REMOVE_RECURSE
  "CMakeFiles/flex_lang.dir/cypher.cc.o"
  "CMakeFiles/flex_lang.dir/cypher.cc.o.d"
  "CMakeFiles/flex_lang.dir/gremlin.cc.o"
  "CMakeFiles/flex_lang.dir/gremlin.cc.o.d"
  "CMakeFiles/flex_lang.dir/lexer.cc.o"
  "CMakeFiles/flex_lang.dir/lexer.cc.o.d"
  "libflex_lang.a"
  "libflex_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
