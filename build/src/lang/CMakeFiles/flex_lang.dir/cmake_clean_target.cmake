file(REMOVE_RECURSE
  "libflex_lang.a"
)
