# Empty dependencies file for flex_lang.
# This may be replaced when dependencies are built.
