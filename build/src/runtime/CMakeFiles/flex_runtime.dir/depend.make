# Empty dependencies file for flex_runtime.
# This may be replaced when dependencies are built.
