file(REMOVE_RECURSE
  "libflex_runtime.a"
)
