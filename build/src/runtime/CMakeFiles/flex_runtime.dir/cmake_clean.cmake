file(REMOVE_RECURSE
  "CMakeFiles/flex_runtime.dir/gaia.cc.o"
  "CMakeFiles/flex_runtime.dir/gaia.cc.o.d"
  "CMakeFiles/flex_runtime.dir/hiactor.cc.o"
  "CMakeFiles/flex_runtime.dir/hiactor.cc.o.d"
  "libflex_runtime.a"
  "libflex_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
