
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/gart/gart_store.cc" "src/storage/CMakeFiles/flex_storage.dir/gart/gart_store.cc.o" "gcc" "src/storage/CMakeFiles/flex_storage.dir/gart/gart_store.cc.o.d"
  "/root/repo/src/storage/graphar/csv.cc" "src/storage/CMakeFiles/flex_storage.dir/graphar/csv.cc.o" "gcc" "src/storage/CMakeFiles/flex_storage.dir/graphar/csv.cc.o.d"
  "/root/repo/src/storage/graphar/encoding.cc" "src/storage/CMakeFiles/flex_storage.dir/graphar/encoding.cc.o" "gcc" "src/storage/CMakeFiles/flex_storage.dir/graphar/encoding.cc.o.d"
  "/root/repo/src/storage/graphar/graphar.cc" "src/storage/CMakeFiles/flex_storage.dir/graphar/graphar.cc.o" "gcc" "src/storage/CMakeFiles/flex_storage.dir/graphar/graphar.cc.o.d"
  "/root/repo/src/storage/livegraph/livegraph_store.cc" "src/storage/CMakeFiles/flex_storage.dir/livegraph/livegraph_store.cc.o" "gcc" "src/storage/CMakeFiles/flex_storage.dir/livegraph/livegraph_store.cc.o.d"
  "/root/repo/src/storage/simple.cc" "src/storage/CMakeFiles/flex_storage.dir/simple.cc.o" "gcc" "src/storage/CMakeFiles/flex_storage.dir/simple.cc.o.d"
  "/root/repo/src/storage/vineyard/vineyard_store.cc" "src/storage/CMakeFiles/flex_storage.dir/vineyard/vineyard_store.cc.o" "gcc" "src/storage/CMakeFiles/flex_storage.dir/vineyard/vineyard_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/flex_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/grin/CMakeFiles/flex_grin.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
