file(REMOVE_RECURSE
  "libflex_storage.a"
)
