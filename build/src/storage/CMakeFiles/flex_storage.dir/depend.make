# Empty dependencies file for flex_storage.
# This may be replaced when dependencies are built.
