file(REMOVE_RECURSE
  "CMakeFiles/flex_storage.dir/gart/gart_store.cc.o"
  "CMakeFiles/flex_storage.dir/gart/gart_store.cc.o.d"
  "CMakeFiles/flex_storage.dir/graphar/csv.cc.o"
  "CMakeFiles/flex_storage.dir/graphar/csv.cc.o.d"
  "CMakeFiles/flex_storage.dir/graphar/encoding.cc.o"
  "CMakeFiles/flex_storage.dir/graphar/encoding.cc.o.d"
  "CMakeFiles/flex_storage.dir/graphar/graphar.cc.o"
  "CMakeFiles/flex_storage.dir/graphar/graphar.cc.o.d"
  "CMakeFiles/flex_storage.dir/livegraph/livegraph_store.cc.o"
  "CMakeFiles/flex_storage.dir/livegraph/livegraph_store.cc.o.d"
  "CMakeFiles/flex_storage.dir/simple.cc.o"
  "CMakeFiles/flex_storage.dir/simple.cc.o.d"
  "CMakeFiles/flex_storage.dir/vineyard/vineyard_store.cc.o"
  "CMakeFiles/flex_storage.dir/vineyard/vineyard_store.cc.o.d"
  "libflex_storage.a"
  "libflex_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flex_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
