# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("graph")
subdirs("datagen")
subdirs("grin")
subdirs("storage")
subdirs("grape")
subdirs("baselines")
subdirs("ir")
subdirs("lang")
subdirs("optimizer")
subdirs("query")
subdirs("runtime")
subdirs("snb")
subdirs("learn")
