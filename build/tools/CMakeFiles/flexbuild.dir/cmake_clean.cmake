file(REMOVE_RECURSE
  "CMakeFiles/flexbuild.dir/flexbuild.cc.o"
  "CMakeFiles/flexbuild.dir/flexbuild.cc.o.d"
  "flexbuild"
  "flexbuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexbuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
