# Empty dependencies file for flexbuild.
# This may be replaced when dependencies are built.
