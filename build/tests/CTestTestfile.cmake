# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;flex_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;flex_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datagen_test "/root/repo/build/tests/datagen_test")
set_tests_properties(datagen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;flex_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;flex_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(grape_test "/root/repo/build/tests/grape_test")
set_tests_properties(grape_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;flex_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;flex_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(query_test "/root/repo/build/tests/query_test")
set_tests_properties(query_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;flex_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(snb_test "/root/repo/build/tests/snb_test")
set_tests_properties(snb_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;flex_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(learn_test "/root/repo/build/tests/learn_test")
set_tests_properties(learn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;flex_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ir_test "/root/repo/build/tests/ir_test")
set_tests_properties(ir_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;flex_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(runtime_test "/root/repo/build/tests/runtime_test")
set_tests_properties(runtime_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;flex_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(interpreter_test "/root/repo/build/tests/interpreter_test")
set_tests_properties(interpreter_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;22;flex_add_test;/root/repo/tests/CMakeLists.txt;0;")
