# Empty compiler generated dependencies file for grape_test.
# This may be replaced when dependencies are built.
