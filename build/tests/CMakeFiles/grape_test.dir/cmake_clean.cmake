file(REMOVE_RECURSE
  "CMakeFiles/grape_test.dir/grape_test.cc.o"
  "CMakeFiles/grape_test.dir/grape_test.cc.o.d"
  "grape_test"
  "grape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
