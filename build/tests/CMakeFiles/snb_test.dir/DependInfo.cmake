
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/snb_test.cc" "tests/CMakeFiles/snb_test.dir/snb_test.cc.o" "gcc" "tests/CMakeFiles/snb_test.dir/snb_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/snb/CMakeFiles/flex_snb.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/flex_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/flex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/flex_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/flex_query_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/flex_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/flex_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/flex_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/grin/CMakeFiles/flex_grin.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/flex_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
