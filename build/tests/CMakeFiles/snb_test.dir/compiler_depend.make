# Empty compiler generated dependencies file for snb_test.
# This may be replaced when dependencies are built.
