file(REMOVE_RECURSE
  "CMakeFiles/snb_test.dir/snb_test.cc.o"
  "CMakeFiles/snb_test.dir/snb_test.cc.o.d"
  "snb_test"
  "snb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
