#include <gtest/gtest.h>

#include <set>

#include "graph/csr.h"
#include "graph/partitioner.h"
#include "graph/property.h"
#include "graph/schema.h"

namespace flex {
namespace {

// ------------------------------------------------------------- Property

TEST(PropertyValueTest, TypesAndAccessors) {
  EXPECT_EQ(PropertyValue().type(), PropertyType::kEmpty);
  EXPECT_TRUE(PropertyValue().is_empty());
  EXPECT_EQ(PropertyValue(true).AsBool(), true);
  EXPECT_EQ(PropertyValue(int64_t{42}).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(PropertyValue(2.5).AsDouble(), 2.5);
  EXPECT_EQ(PropertyValue("hi").AsString(), "hi");
}

TEST(PropertyValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(PropertyValue(int64_t{3}), PropertyValue(3.0));
  EXPECT_NE(PropertyValue(int64_t{3}), PropertyValue(3.5));
  EXPECT_NE(PropertyValue("3"), PropertyValue(int64_t{3}));
}

TEST(PropertyValueTest, CompareOrdersNumbersAndStrings) {
  EXPECT_LT(PropertyValue(int64_t{1}), PropertyValue(2.0));
  EXPECT_LT(PropertyValue("abc"), PropertyValue("abd"));
  EXPECT_EQ(PropertyValue("x").Compare(PropertyValue("x")), 0);
}

TEST(PropertyValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(PropertyValue(int64_t{5}).Hash(), PropertyValue(5.0).Hash());
  EXPECT_EQ(PropertyValue("k").Hash(), PropertyValue("k").Hash());
  EXPECT_NE(PropertyValue("k").Hash(), PropertyValue("l").Hash());
}

TEST(PropertyValueTest, ToString) {
  EXPECT_EQ(PropertyValue().ToString(), "null");
  EXPECT_EQ(PropertyValue(int64_t{7}).ToString(), "7");
  EXPECT_EQ(PropertyValue(true).ToString(), "true");
  EXPECT_EQ(PropertyValue("s").ToString(), "s");
}

// --------------------------------------------------------------- Schema

TEST(SchemaTest, AddAndLookupLabels) {
  GraphSchema schema;
  auto buyer = schema.AddVertexLabel(
      "Buyer", {{"username", PropertyType::kString},
                {"credits", PropertyType::kInt64}});
  ASSERT_TRUE(buyer.ok());
  auto item = schema.AddVertexLabel("Item", {{"price", PropertyType::kDouble}});
  ASSERT_TRUE(item.ok());
  auto buy = schema.AddEdgeLabel("BUY", buyer.value(), item.value(),
                                 {{"date", PropertyType::kInt64}});
  ASSERT_TRUE(buy.ok());

  EXPECT_EQ(schema.vertex_label_num(), 2u);
  EXPECT_EQ(schema.edge_label_num(), 1u);
  EXPECT_EQ(schema.FindVertexLabel("Item").value(), item.value());
  EXPECT_EQ(schema.FindEdgeLabel("BUY").value(), buy.value());
  EXPECT_EQ(schema.FindVertexProperty(buyer.value(), "credits").value(), 1u);
  EXPECT_EQ(schema.FindEdgeProperty(buy.value(), "date").value(), 0u);
  EXPECT_EQ(schema.edge_label(buy.value()).src_label, buyer.value());
  EXPECT_EQ(schema.edge_label(buy.value()).dst_label, item.value());
}

TEST(SchemaTest, RejectsDuplicatesAndBadRefs) {
  GraphSchema schema;
  ASSERT_TRUE(schema.AddVertexLabel("A", {}).ok());
  EXPECT_EQ(schema.AddVertexLabel("A", {}).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.AddEdgeLabel("E", 0, 9, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(schema.FindVertexLabel("missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(schema.FindVertexProperty(0, "missing").status().code(),
            StatusCode::kNotFound);
}

// ------------------------------------------------------------------ CSR

EdgeList DiamondGraph() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
  EdgeList list;
  list.num_vertices = 4;
  list.edges = {{0, 1, 0.1}, {0, 2, 0.2}, {1, 3, 0.3}, {2, 3, 0.4}};
  return list;
}

TEST(CsrTest, BuildsForwardAdjacency) {
  Csr csr = Csr::FromEdges(DiamondGraph());
  EXPECT_EQ(csr.num_vertices(), 4u);
  EXPECT_EQ(csr.num_edges(), 4u);
  ASSERT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.Neighbors(0)[0], 1u);
  EXPECT_EQ(csr.Neighbors(0)[1], 2u);
  EXPECT_DOUBLE_EQ(csr.Weights(0)[1], 0.2);
  EXPECT_EQ(csr.degree(3), 0u);
}

TEST(CsrTest, BuildsReversedAdjacency) {
  Csr csc = Csr::FromEdges(DiamondGraph(), /*reversed=*/true);
  ASSERT_EQ(csc.degree(3), 2u);
  EXPECT_EQ(csc.Neighbors(3)[0], 1u);
  EXPECT_EQ(csc.Neighbors(3)[1], 2u);
  EXPECT_EQ(csc.degree(0), 0u);
}

TEST(CsrTest, EmptyGraph) {
  EdgeList list;
  list.num_vertices = 0;
  Csr csr = Csr::FromEdges(list);
  EXPECT_EQ(csr.num_vertices(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
}

TEST(CsrTest, IsolatedVerticesHaveZeroDegree) {
  EdgeList list;
  list.num_vertices = 5;
  list.edges = {{4, 0, 1.0}};
  Csr csr = Csr::FromEdges(list);
  for (vid_t v = 0; v < 4; ++v) EXPECT_EQ(csr.degree(v), 0u);
  EXPECT_EQ(csr.degree(4), 1u);
}

TEST(CsrTest, StatsMatchStructure) {
  GraphStats stats = ComputeStats(Csr::FromEdges(DiamondGraph()));
  EXPECT_EQ(stats.num_vertices, 4u);
  EXPECT_EQ(stats.num_edges, 4u);
  EXPECT_EQ(stats.max_degree, 2u);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 1.0);
}

TEST(CsrTest, EdgeOffsetsAreGlobalRanks) {
  Csr csr = Csr::FromEdges(DiamondGraph());
  EXPECT_EQ(csr.EdgeOffset(0), 0u);
  EXPECT_EQ(csr.EdgeOffset(1), 2u);
  EXPECT_EQ(csr.EdgeOffset(2), 3u);
  EXPECT_EQ(csr.EdgeOffset(3), 4u);
}

// ---------------------------------------------------------- Partitioner

class PartitionerPolicies
    : public ::testing::TestWithParam<EdgeCutPartitioner::Policy> {};

TEST_P(PartitionerPolicies, EveryVertexHasExactlyOneOwner) {
  const vid_t n = 1000;
  EdgeCutPartitioner part(n, 4, GetParam());
  std::vector<int> seen(n, 0);
  for (partition_t p = 0; p < 4; ++p) {
    for (vid_t v : part.VerticesOf(p)) ++seen[v];
  }
  for (vid_t v = 0; v < n; ++v) EXPECT_EQ(seen[v], 1) << "vertex " << v;
}

TEST_P(PartitionerPolicies, PartitionIdsInRange) {
  EdgeCutPartitioner part(777, 3, GetParam());
  for (vid_t v = 0; v < 777; ++v) EXPECT_LT(part.GetPartition(v), 3u);
}

TEST_P(PartitionerPolicies, EdgesFollowSourceOwner) {
  EdgeList list;
  list.num_vertices = 100;
  for (vid_t v = 0; v < 100; ++v) list.edges.push_back({v, (v + 1) % 100, 1.0});
  EdgeCutPartitioner part(100, 4, GetParam());
  auto parts = part.PartitionEdges(list);
  ASSERT_EQ(parts.size(), 4u);
  size_t total = 0;
  for (partition_t p = 0; p < 4; ++p) {
    total += parts[p].edges.size();
    for (const RawEdge& e : parts[p].edges) {
      EXPECT_EQ(part.GetPartition(e.src), p);
    }
  }
  EXPECT_EQ(total, list.edges.size());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PartitionerPolicies,
    ::testing::Values(EdgeCutPartitioner::Policy::kHash,
                      EdgeCutPartitioner::Policy::kRange));

TEST(PartitionerTest, HashBalancesLoad) {
  const vid_t n = 10000;
  EdgeCutPartitioner part(n, 8, EdgeCutPartitioner::Policy::kHash);
  std::vector<size_t> counts(8, 0);
  for (vid_t v = 0; v < n; ++v) ++counts[part.GetPartition(v)];
  for (size_t c : counts) {
    EXPECT_GT(c, n / 8 / 2);
    EXPECT_LT(c, n / 8 * 2);
  }
}

TEST(PartitionerTest, SinglePartitionOwnsAll) {
  EdgeCutPartitioner part(50, 1);
  EXPECT_EQ(part.VerticesOf(0).size(), 50u);
}

}  // namespace
}  // namespace flex
