// Chaos harness: drives every fault site in the stack with fixed seeds and
// asserts that execution either recovers to the fault-free answer or fails
// with a clean non-OK Status — never a crash, hang, or silent wrong result.
//
// Determinism contract: arming the same policies with the same seeds
// produces the same injected-fault trace (Injector::Trace()), so any chaos
// failure reproduces with `FLEX_CHAOS_SEED=<seed> ./chaos_test`.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/fault.h"
#include "common/metric_names.h"
#include "common/metrics.h"
#include "datagen/generators.h"
#include "grape/apps/pagerank.h"
#include "query/service.h"
#include "storage/vineyard/vineyard_store.h"

namespace flex {
namespace {

/// Seed for the seeded-probability chaos policies; override with
/// FLEX_CHAOS_SEED to explore (or reproduce) other schedules.
uint64_t ChaosSeed() {
  const char* s = std::getenv("FLEX_CHAOS_SEED");
  return (s != nullptr && s[0] != '\0') ? std::strtoull(s, nullptr, 10) : 1;
}

fault::Injector& Faults() { return fault::Injector::Instance(); }

void ArmSpec(const std::string& spec) {
  ASSERT_TRUE(Faults().ArmFromSpec(spec).ok()) << spec;
}

/// Every test starts and ends disarmed so no fault leaks across tests.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { Faults().DisarmAll(); }
  void TearDown() override { Faults().DisarmAll(); }
};

// ----------------------------------------------------------- Injector

TEST_F(ChaosTest, NthWindowPolicyFiresExactlyInWindow) {
  fault::Policy policy;
  policy.nth = 2;
  policy.count = 2;
  Faults().Arm("test.site", policy);
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) fired.push_back(FLEX_FAULT_POINT("test.site"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, true, false, false}));
  EXPECT_EQ(Faults().Hits("test.site"), 5u);
  EXPECT_EQ(Faults().Fires("test.site"), 2u);
  EXPECT_EQ(Faults().Trace(),
            (std::vector<std::string>{"test.site#2", "test.site#3"}));
}

TEST_F(ChaosTest, ArmedProcessLeavesOtherSitesAlone) {
  fault::Policy policy;
  Faults().Arm("test.site", policy);
  EXPECT_FALSE(FLEX_FAULT_POINT("test.other"));
  EXPECT_EQ(Faults().Hits("test.other"), 0u);
}

TEST_F(ChaosTest, DisarmedFastPathDoesNoAccounting) {
  fault::Policy policy;
  Faults().Arm("test.site", policy);
  Faults().DisarmAll();
  EXPECT_FALSE(fault::Armed());
  EXPECT_FALSE(FLEX_FAULT_POINT("test.site"));
  EXPECT_EQ(Faults().Hits("test.site"), 0u);
  EXPECT_TRUE(Faults().Trace().empty());
}

TEST_F(ChaosTest, ProbabilityPolicyIsSeedDeterministic) {
  auto run = [&]() {
    fault::Policy policy;
    policy.kind = fault::Policy::Kind::kProbability;
    policy.probability = 0.5;
    policy.seed = ChaosSeed();
    Faults().Arm("test.prob", policy);
    uint64_t fires = 0;
    for (int i = 0; i < 200; ++i) {
      if (FLEX_FAULT_POINT("test.prob")) ++fires;
    }
    std::vector<std::string> trace = Faults().Trace();
    Faults().DisarmAll();
    return std::make_pair(fires, trace);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  // p=0.5 over 200 trials: all-or-none would mean the Rng is broken.
  EXPECT_GT(first.first, 0u);
  EXPECT_LT(first.first, 200u);
}

TEST_F(ChaosTest, SpecStringArmsEveryPolicyKind) {
  ArmSpec("test.a=nth:2;test.b=prob:0.25:seed:9;test.c=delay:1ms");
  EXPECT_FALSE(FLEX_FAULT_POINT("test.a"));
  EXPECT_TRUE(FLEX_FAULT_POINT("test.a"));   // nth:2, count defaults to 1.
  EXPECT_FALSE(FLEX_FAULT_POINT("test.a"));  // Window closed.
  // Delay policies sleep but never report failure; the fire is traced.
  EXPECT_FALSE(FLEX_FAULT_POINT("test.c"));
  EXPECT_EQ(Faults().Fires("test.c"), 1u);
}

TEST_F(ChaosTest, SpecStringRejectsGarbage) {
  EXPECT_FALSE(Faults().ArmFromSpec("nonsense").ok());
  EXPECT_FALSE(Faults().ArmFromSpec("x=").ok());
  EXPECT_FALSE(Faults().ArmFromSpec("x=nth").ok());
  EXPECT_FALSE(Faults().ArmFromSpec("x=nth:0").ok());
  EXPECT_FALSE(Faults().ArmFromSpec("x=delay:5parsecs").ok());
  EXPECT_FALSE(Faults().ArmFromSpec("x=warp:9").ok());
}

TEST_F(ChaosTest, SpecStringRejectsUnknownSiteNames) {
  // A typo'd site would otherwise arm a dead entry and the chaos run
  // silently tests nothing: unknown names are kInvalidArgument.
  Status st = Faults().ArmFromSpec("storgae.read=nth:1");
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("storgae.read"), std::string::npos);
  // One bad site poisons the whole spec, even with valid entries first.
  EXPECT_FALSE(
      Faults().ArmFromSpec("msg.corrupt=nth:1;wal.appnd=nth:2").ok());
  // Every registered production site parses...
  for (const char* site : fault::kAllFaultSites) {
    EXPECT_TRUE(
        Faults().ArmFromSpec(std::string(site) + "=nth:1000000").ok())
        << site;
    Faults().DisarmAll();
  }
  // ...and the test.* namespace stays exempt (fixture-local sites).
  EXPECT_TRUE(Faults().ArmFromSpec("test.anything=nth:1000000").ok());
  EXPECT_TRUE(fault::KnownFaultSite("test.anything"));
  EXPECT_FALSE(fault::KnownFaultSite("storgae.read"));
}

// ----------------------------------------------- MessageManager frames

using Delivery = std::vector<std::pair<vid_t, uint64_t>>;

Delivery ExpectedDelivery() {
  Delivery expected;
  for (uint64_t i = 0; i < 10; ++i) expected.push_back({i, 100 + i});
  return expected;
}

TEST_F(ChaosTest, CorruptedFrameIsRetransmittedWithinTheSuperstep) {
  metrics::MetricsRegistry::Instance().ResetAllForTesting();
  grape::MessageManager<uint64_t> mm(2, grape::MessageMode::kAggregated);
  for (uint64_t i = 0; i < 10; ++i) {
    mm.Send(1, 0, static_cast<vid_t>(i), 100 + i);
  }
  ArmSpec("msg.corrupt=nth:1");
  mm.Flush();  // Flips a payload byte; the frame checksum catches it.
  Faults().DisarmAll();
  Delivery got;
  const Status st =
      mm.Receive(0, [&](vid_t t, const uint64_t& m) { got.push_back({t, m}); });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(mm.retransmits(), 1u);
  EXPECT_EQ(got, ExpectedDelivery());
  // Recovery is observable through the metrics registry, not just the
  // manager's own accessor: exactly one retransmit, one fault fired.
  auto& registry = metrics::MetricsRegistry::Instance();
  EXPECT_EQ(registry.GetCounter(metrics::kMsgRetransmitsTotal)->Value(), 1u);
  EXPECT_EQ(registry.GetCounter(metrics::kFaultsFiredTotal)->Value(), 1u);
}

TEST_F(ChaosTest, TruncatedFlushIsRepaired) {
  grape::MessageManager<uint64_t> mm(2, grape::MessageMode::kAggregated);
  for (uint64_t i = 0; i < 10; ++i) {
    mm.Send(1, 0, static_cast<vid_t>(i), 100 + i);
  }
  ArmSpec("grape.flush=nth:1");
  mm.Flush();  // Drops the stream's tail byte (partial flush).
  Faults().DisarmAll();
  Delivery got;
  const Status st =
      mm.Receive(0, [&](vid_t t, const uint64_t& m) { got.push_back({t, m}); });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(mm.retransmits(), 1u);
  EXPECT_EQ(got, ExpectedDelivery());
}

TEST_F(ChaosTest, CorruptionWithoutRetransmissionIsDataLoss) {
  grape::MessageManager<uint64_t> mm(2, grape::MessageMode::kAggregated);
  mm.set_retransmit_enabled(false);
  for (uint64_t i = 0; i < 10; ++i) {
    mm.Send(1, 0, static_cast<vid_t>(i), 100 + i);
  }
  ArmSpec("msg.corrupt=nth:1");
  mm.Flush();
  Faults().DisarmAll();
  Delivery got;
  const Status st =
      mm.Receive(0, [&](vid_t t, const uint64_t& m) { got.push_back({t, m}); });
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(mm.retransmits(), 0u);
}

TEST_F(ChaosTest, RepairDeliversEachFrameExactlyOnce) {
  // Three sources feed fragment 0; the corrupting fault hits the *last*
  // frame, so two frames deliver before the damage is found. The repair
  // must not redeliver them.
  grape::MessageManager<uint64_t> mm(3, grape::MessageMode::kAggregated);
  for (partition_t src = 0; src < 3; ++src) {
    mm.Send(src, 0, static_cast<vid_t>(src), 1000 + src);
  }
  ArmSpec("msg.corrupt=nth:1");
  mm.Flush();
  Faults().DisarmAll();
  Delivery got;
  const Status st =
      mm.Receive(0, [&](vid_t t, const uint64_t& m) { got.push_back({t, m}); });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(mm.retransmits(), 1u);
  EXPECT_EQ(got, (Delivery{{0, 1000}, {1, 1001}, {2, 1002}}));
}

// ------------------------------------------------------- PIE under chaos

/// Fragments keep a pointer into their partitioner, so the two must travel
/// together.
struct ChaosGraph {
  std::unique_ptr<EdgeCutPartitioner> part;
  std::vector<std::unique_ptr<grape::Fragment>> frags;
};

ChaosGraph ChaosFragments(partition_t nfrag) {
  EdgeList g = datagen::GenerateRmat(
      {.scale = 8, .edge_factor = 4.0, .a = 0.57, .b = 0.19, .c = 0.19,
       .seed = 7});
  ChaosGraph cg;
  cg.part = std::make_unique<EdgeCutPartitioner>(g.num_vertices, nfrag);
  cg.frags = grape::Partition(g, *cg.part);
  return cg;
}

TEST_F(ChaosTest, PageRankSurvivesWorkerKill) {
  auto cg = ChaosFragments(4);
  const auto& frags = cg.frags;
  const std::vector<double> clean = grape::RunPageRank(frags, 8, 0.85);
  // Kill two fragment computes (hits 3 and 4 land in PEval with 4 workers);
  // the superstep leader re-executes them before the first flush.
  ArmSpec("pie.compute=nth:3:count:2");
  const std::vector<double> chaotic = grape::RunPageRank(frags, 8, 0.85);
  EXPECT_EQ(Faults().Fires("pie.compute"), 2u);
  Faults().DisarmAll();
  ASSERT_EQ(chaotic.size(), clean.size());
  for (size_t v = 0; v < clean.size(); ++v) {
    // Recovery replays the identical compute, so the result is bit-equal.
    EXPECT_DOUBLE_EQ(chaotic[v], clean[v]) << "vertex " << v;
  }
}

TEST_F(ChaosTest, PageRankCorrectUnderRepeatedFrameCorruption) {
  auto cg = ChaosFragments(3);
  const auto& frags = cg.frags;
  const std::vector<double> clean = grape::RunPageRank(frags, 6, 0.85);
  ArmSpec("msg.corrupt=nth:2:count:3");
  const std::vector<double> chaotic = grape::RunPageRank(frags, 6, 0.85);
  EXPECT_EQ(Faults().Fires("msg.corrupt"), 3u);
  Faults().DisarmAll();
  ASSERT_EQ(chaotic.size(), clean.size());
  for (size_t v = 0; v < clean.size(); ++v) {
    EXPECT_DOUBLE_EQ(chaotic[v], clean[v]) << "vertex " << v;
  }
}

TEST_F(ChaosTest, PageRankCorrectUnderInjectedChannelDelay) {
  auto cg = ChaosFragments(3);
  const auto& frags = cg.frags;
  const std::vector<double> clean = grape::RunPageRank(frags, 4, 0.85);
  ArmSpec("msg.delay=delay:100us:nth:1:count:16");
  const std::vector<double> chaotic = grape::RunPageRank(frags, 4, 0.85);
  EXPECT_EQ(Faults().Fires("msg.delay"), 16u);
  Faults().DisarmAll();
  ASSERT_EQ(chaotic.size(), clean.size());
  for (size_t v = 0; v < clean.size(); ++v) {
    EXPECT_DOUBLE_EQ(chaotic[v], clean[v]) << "vertex " << v;
  }
}

TEST_F(ChaosTest, WorkerKillTraceIsReproducible) {
  auto cg = ChaosFragments(3);
  const auto& frags = cg.frags;
  auto run = [&]() {
    ArmSpec("pie.compute=prob:0.2:seed:" + std::to_string(ChaosSeed()));
    grape::RunPageRank(frags, 5, 0.85);
    std::vector<std::string> trace = Faults().Trace();
    Faults().DisarmAll();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(ChaosTest, ExpiredDeadlineStopsPieBeforeAnySuperstep) {
  auto cg = ChaosFragments(2);
  const auto& frags = cg.frags;
  std::vector<std::unique_ptr<grape::PieApp<double>>> apps;
  for (int i = 0; i < 2; ++i) {
    apps.push_back(std::make_unique<grape::PageRankApp>(5, 0.85));
  }
  grape::PieOptions options;
  options.deadline = Deadline::Expired();
  const auto result = grape::RunPieChecked(frags, apps, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ChaosTest, CancelledTokenStopsPieBeforeAnySuperstep) {
  auto cg = ChaosFragments(2);
  const auto& frags = cg.frags;
  std::vector<std::unique_ptr<grape::PieApp<double>>> apps;
  for (int i = 0; i < 2; ++i) {
    apps.push_back(std::make_unique<grape::PageRankApp>(5, 0.85));
  }
  CancellationToken cancel;
  cancel.Cancel();
  grape::PieOptions options;
  options.cancel = &cancel;
  const auto result = grape::RunPieChecked(frags, apps, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

// ------------------------------------------------- query layer under chaos

PropertyGraphData ChainData() {
  PropertyGraphData data;
  const label_t person =
      data.schema
          .AddVertexLabel("Person", {{"name", PropertyType::kString}})
          .value();
  const label_t knows =
      data.schema.AddEdgeLabel("KNOWS", person, person, {}).value();
  for (oid_t i = 1; i <= 6; ++i) {
    data.AddVertex(person, i, {PropertyValue("p" + std::to_string(i))});
  }
  for (oid_t i = 1; i < 6; ++i) {
    data.AddEdge(knows, i, i + 1, {});
  }
  return data;
}

constexpr const char* kNamesQuery = "MATCH (p:Person) RETURN p.name";

class ChaosQueryTest : public ChaosTest {
 protected:
  void SetUp() override {
    ChaosTest::SetUp();
    store_ = storage::VineyardStore::Build(ChainData()).value();
    graph_ = store_->GetGrinHandle();
    service_ = std::make_unique<query::QueryService>(graph_.get(), 2);
  }

  std::unique_ptr<storage::VineyardStore> store_;
  std::unique_ptr<grin::GrinGraph> graph_;
  std::unique_ptr<query::QueryService> service_;
};

TEST_F(ChaosQueryTest, GaiaRejectsExpiredDeadlineUpFront) {
  query::RunOptions options;
  options.engine = query::EngineKind::kGaia;
  options.deadline = Deadline::Expired();
  const auto result =
      service_->Run(query::Language::kCypher, kNamesQuery, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ChaosQueryTest, HiActorRejectsExpiredDeadlineWithoutExecuting) {
  query::RunOptions options;
  options.engine = query::EngineKind::kHiActor;
  options.deadline = Deadline::Expired();
  const auto result =
      service_->Run(query::Language::kCypher, kNamesQuery, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Rejected at Submit: no shard ever ran (or counted) the task.
  EXPECT_EQ(service_->hiactor().completed(), 0u);
}

TEST_F(ChaosQueryTest, CancelledTokenShortCircuitsBothEngines) {
  CancellationToken cancel;
  cancel.Cancel();
  for (const auto engine :
       {query::EngineKind::kGaia, query::EngineKind::kHiActor}) {
    query::RunOptions options;
    options.engine = engine;
    options.cancel = &cancel;
    const auto result =
        service_->Run(query::Language::kCypher, kNamesQuery, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
}

TEST_F(ChaosQueryTest, StorageReadFaultSurfacesAsDataLossWithoutRetry) {
  ArmSpec("storage.read=nth:1:count:1");
  query::RunOptions options;
  options.engine = query::EngineKind::kGaia;
  const auto result =
      service_->Run(query::Language::kCypher, kNamesQuery, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST_F(ChaosQueryTest, StorageReadFaultIsRetriedToSuccess) {
  ArmSpec("storage.read=nth:1:count:1");
  query::RunOptions options;
  options.engine = query::EngineKind::kGaia;
  options.max_retries = 2;
  const auto result =
      service_->Run(query::Language::kCypher, kNamesQuery, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().size(), 6u);
  EXPECT_EQ(Faults().Fires("storage.read"), 1u);
}

TEST_F(ChaosQueryTest, DroppedActorTaskIsRetriedToSuccess) {
  ArmSpec("hiactor.dispatch=nth:1:count:1");
  query::RunOptions options;
  options.engine = query::EngineKind::kHiActor;
  options.max_retries = 1;
  const auto result =
      service_->Run(query::Language::kCypher, kNamesQuery, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().size(), 6u);
  EXPECT_EQ(Faults().Fires("hiactor.dispatch"), 1u);
}

TEST_F(ChaosQueryTest, ConcurrentServingSurvivesFaultsAndDeadlines) {
  // The serving-front chaos scenario: 8 client threads share one service
  // while dispatch and storage faults fire probabilistically and some
  // requests carry deadlines. The contract under fire is all-or-nothing
  // per query: correct rows, or a documented StatusCode — never a hang,
  // never silently wrong rows.
  //
  // Each client pins its own retry_jitter_seed, so clients that fail
  // together back off on *different* schedules (no cross-tenant retry
  // storm); the retry-count ceiling below would catch lockstep retrying
  // amplifying the fault rate.
  constexpr size_t kClients = 8;
  constexpr int kQueriesPerClient = 16;
  constexpr int kMaxRetries = 2;

  // Fault-free oracle, computed before arming anything.
  const auto expected_result =
      service_->Run(query::Language::kCypher, kNamesQuery);
  ASSERT_TRUE(expected_result.ok());
  const std::vector<std::string> expected =
      query::RowsToStrings(expected_result.value());
  ASSERT_EQ(expected.size(), 6u);

  const uint64_t retries_before =
      metrics::MetricsRegistry::Instance()
          .GetCounter(metrics::kQueryRetriesTotal)
          ->Value();

  const uint64_t seed = ChaosSeed();
  ArmSpec("hiactor.dispatch=prob:0.15:seed:" + std::to_string(seed) +
          ";storage.read=prob:0.05:seed:" + std::to_string(seed + 1));

  // Every client is its own tenant with a generous slot quota: admission
  // takes part in the scenario without being the dominant failure mode.
  for (size_t c = 0; c < kClients; ++c) {
    service_->SetTenantQuota("client-" + std::to_string(c), 4);
  }

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  std::atomic<size_t> ok_count{0};
  std::atomic<size_t> failed_count{0};
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kQueriesPerClient; ++i) {
        query::RunOptions options;
        options.engine = (i % 2 == 0) ? query::EngineKind::kGaia
                                      : query::EngineKind::kHiActor;
        options.tenant = "client-" + std::to_string(c);
        options.max_retries = kMaxRetries;
        options.retry_backoff = std::chrono::milliseconds(1);
        options.retry_jitter_seed = c + 1;  // Pinned, distinct per client.
        if (i % 4 == 3) {
          // A quarter of the traffic runs with a real (but ample)
          // deadline, so deadline enforcement is exercised concurrently
          // with fault recovery.
          options.deadline = Deadline::After(std::chrono::seconds(5));
        }
        const auto result = service_->Run(query::Language::kCypher,
                                          kNamesQuery, options);
        if (result.ok()) {
          // Success must mean *correct* success, even when retries
          // recovered the query under the hood.
          EXPECT_EQ(query::RowsToStrings(result.value()), expected)
              << "client " << c << " query " << i;
          ok_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          // The documented failure surface of the serving path, nothing
          // else: transient faults that outlived the retry budget,
          // deadline/cancel admission, or quota/queue rejection.
          const StatusCode code = result.status().code();
          EXPECT_TRUE(code == StatusCode::kAborted ||
                      code == StatusCode::kDataLoss ||
                      code == StatusCode::kDeadlineExceeded ||
                      code == StatusCode::kCancelled ||
                      code == StatusCode::kResourceExhausted)
              << "client " << c << " query " << i << ": undocumented "
              << result.status().ToString();
          failed_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();  // Completion itself asserts no hang.

  EXPECT_EQ(ok_count.load() + failed_count.load(),
            kClients * kQueriesPerClient);
  // With prob-policy faults and retries armed, most traffic recovers.
  EXPECT_GT(ok_count.load(), 0u);

  // Retry ceiling: every query retries at most kMaxRetries times, so the
  // fleet-wide retry count is bounded — a lockstep retry storm that
  // re-submitted beyond the budget would break this.
  const uint64_t retries_after =
      metrics::MetricsRegistry::Instance()
          .GetCounter(metrics::kQueryRetriesTotal)
          ->Value();
  EXPECT_LE(retries_after - retries_before,
            static_cast<uint64_t>(kClients * kQueriesPerClient *
                                  kMaxRetries));

  // In-flight accounting drained back to zero for every tenant.
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(service_->admission().InFlight("client-" + std::to_string(c)),
              0);
  }
}

TEST_F(ChaosQueryTest, AdmissionControlShedsOverload) {
  // A single-shard engine whose worker is slowed by a dispatch delay: the
  // queue backs up past the depth bound and later submissions shed with
  // kResourceExhausted instead of queueing unboundedly.
  query::QueryService slow(graph_.get(), 1);
  slow.hiactor().set_max_queue_depth(1);
  const auto shared_plan = std::make_shared<const ir::Plan>(
      slow.Compile(query::Language::kCypher, kNamesQuery).value());
  ArmSpec("hiactor.dispatch=delay:50ms:nth:1:count:32");

  std::vector<std::future<Result<std::vector<ir::Row>>>> futures;
  for (int i = 0; i < 6; ++i) {
    runtime::QueryTask task;
    task.plan = shared_plan;
    futures.push_back(slow.hiactor().Submit(std::move(task)));
  }
  size_t shed = 0;
  size_t succeeded = 0;
  for (auto& f : futures) {
    const auto result = f.get();  // Every future resolves; no hangs.
    if (result.ok()) {
      ++succeeded;
    } else {
      ASSERT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_GE(shed, 1u);
  EXPECT_GE(succeeded, 1u);
  EXPECT_EQ(slow.hiactor().shed(), shed);
  // Shed tasks never executed.
  EXPECT_EQ(slow.hiactor().completed(), 6u - shed);
}

}  // namespace
}  // namespace flex
