#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/generators.h"
#include "datagen/registry.h"
#include "graph/csr.h"

namespace flex::datagen {
namespace {

TEST(RmatTest, SizesMatchParams) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 8.0;
  EdgeList list = GenerateRmat(params);
  EXPECT_EQ(list.num_vertices, 1024u);
  EXPECT_EQ(list.num_edges(), 8192u);
  for (const RawEdge& e : list.edges) {
    EXPECT_LT(e.src, 1024u);
    EXPECT_LT(e.dst, 1024u);
  }
}

TEST(RmatTest, DeterministicPerSeed) {
  RmatParams params;
  params.scale = 8;
  params.seed = 77;
  EdgeList a = GenerateRmat(params);
  EdgeList b = GenerateRmat(params);
  EXPECT_EQ(a.edges, b.edges);
  params.seed = 78;
  EdgeList c = GenerateRmat(params);
  EXPECT_NE(a.edges, c.edges);
}

TEST(RmatTest, ProducesSkewedDegrees) {
  RmatParams params;
  params.scale = 12;
  params.edge_factor = 16.0;
  Csr csr = Csr::FromEdges(GenerateRmat(params));
  GraphStats stats = ComputeStats(csr);
  // Power-law: the max degree should dwarf the average.
  EXPECT_GT(static_cast<double>(stats.max_degree), 10.0 * stats.avg_degree);
}

TEST(UniformTest, FlatDegreesComparedToRmat) {
  EdgeList list = GenerateUniform(4096, 65536, 5);
  Csr csr = Csr::FromEdges(list);
  GraphStats stats = ComputeStats(csr);
  // Poisson-ish tail: max degree within a small multiple of the mean.
  EXPECT_LT(static_cast<double>(stats.max_degree), 5.0 * stats.avg_degree);
}

TEST(WebLikeTest, InDegreeIsHeavyTailed) {
  EdgeList list = GenerateWebLike(4096, 65536, 0.9, 11);
  Csr csc = Csr::FromEdges(list, /*reversed=*/true);
  size_t max_in = 0;
  for (vid_t v = 0; v < csc.num_vertices(); ++v) {
    max_in = std::max(max_in, csc.degree(v));
  }
  EXPECT_GT(max_in, 1000u);  // The rank-1 hub soaks up a large share.
}

TEST(WeightsTest, AssignedPositiveAndDeterministic) {
  EdgeList a = GenerateUniform(128, 1024, 3);
  EdgeList b = a;
  AssignWeights(&a, 9);
  AssignWeights(&b, 9);
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_GT(a.edges[i].weight, 0.0);
    EXPECT_EQ(a.edges[i].weight, b.edges[i].weight);
  }
}

TEST(SymmetrizeTest, DoublesEdgesWithReverses) {
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 1, 0.5}, {1, 2, 0.25}};
  EdgeList sym = Symmetrize(list);
  ASSERT_EQ(sym.num_edges(), 4u);
  EXPECT_EQ(sym.edges[1].src, 1u);
  EXPECT_EQ(sym.edges[1].dst, 0u);
  EXPECT_DOUBLE_EQ(sym.edges[1].weight, 0.5);
}

TEST(RegistryTest, AllPaperDatasetsPresent) {
  const auto& all = AllDatasets();
  EXPECT_EQ(all.size(), 15u);  // Table 1 rows.
  for (const char* abbr :
       {"FB0", "FB1", "ZF", "G500", "WB", "UK", "CF", "TW", "IT", "AR", "PD",
        "PA", "SNB-30", "SNB-300", "SNB-1000"}) {
    EXPECT_TRUE(FindDataset(abbr).ok()) << abbr;
  }
  EXPECT_FALSE(FindDataset("nope").ok());
}

TEST(RegistryTest, GeneratedGraphMatchesSpec) {
  auto spec = FindDataset("G500").value();
  EdgeList list = Generate(spec);
  EXPECT_EQ(list.num_vertices, 1u << spec.scale);
  EXPECT_NEAR(static_cast<double>(list.num_edges()),
              spec.edge_factor * list.num_vertices,
              list.num_vertices);  // Rounding slack.
}

class RegistryAllSpecs : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(RegistryAllSpecs, GeneratesValidEdges) {
  EdgeList list = Generate(GetParam());
  EXPECT_GT(list.num_vertices, 0u);
  EXPECT_GT(list.num_edges(), 0u);
  for (size_t i = 0; i < std::min<size_t>(list.num_edges(), 1000); ++i) {
    EXPECT_LT(list.edges[i].src, list.num_vertices);
    EXPECT_LT(list.edges[i].dst, list.num_vertices);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, RegistryAllSpecs, ::testing::ValuesIn(AllDatasets()),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      std::string name = info.param.abbr;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace flex::datagen
