// flexcheck's own test: every rule must fire on its seeded fixture tree
// (tests/flexcheck_fixtures/<name>/) and stay silent on the clean fixture
// and on the real source tree. The fixtures are the rule contract — when
// a rule's semantics change, its fixture changes in the same commit.

#include <algorithm>
#include <string>
#include <vector>

#include "flexcheck/model.h"
#include "flexcheck/rules.h"
#include "gtest/gtest.h"

namespace flexcheck {
namespace {

std::string FixtureRoot(const std::string& name) {
  return std::string(FLEXCHECK_FIXTURES_DIR) + "/" + name;
}

/// Violations from the named fixture tree.
std::vector<Violation> Analyze(const std::string& fixture) {
  return AnalyzeTree(FixtureRoot(fixture));
}

bool HasViolation(const std::vector<Violation>& vs, const std::string& rule,
                  const std::string& message_fragment) {
  return std::any_of(vs.begin(), vs.end(), [&](const Violation& v) {
    return v.rule == rule &&
           v.message.find(message_fragment) != std::string::npos;
  });
}

size_t CountRule(const std::vector<Violation>& vs, const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(vs.begin(), vs.end(),
                    [&](const Violation& v) { return v.rule == rule; }));
}

TEST(FlexcheckTest, LockOrderCycleFromOppositeAcquisitionOrders) {
  const auto vs = Analyze("lock_order");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "lock-order");
  EXPECT_EQ(vs[0].file, "src/ab.cc");
  // The cycle names both mutexes by their type-qualified identity.
  EXPECT_NE(vs[0].message.find("Inventory::mu_a_"), std::string::npos);
  EXPECT_NE(vs[0].message.find("Inventory::mu_b_"), std::string::npos);
}

TEST(FlexcheckTest, LockOrderCycleAcrossTranslationUnits) {
  const auto vs = Analyze("lock_order_cross_tu");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "lock-order");
  // The closing edge is only visible through the call into the other TU.
  EXPECT_NE(vs[0].message.find("via call to TouchMap"), std::string::npos);
}

TEST(FlexcheckTest, BlockingUnderLock) {
  const auto vs = Analyze("blocking");
  EXPECT_EQ(CountRule(vs, "blocking-under-lock"), 2u);
  EXPECT_TRUE(HasViolation(vs, "blocking-under-lock", "Submit"));
  EXPECT_TRUE(
      HasViolation(vs, "blocking-under-lock", "Dispatcher::other_mu_"));
  // WaitRight (waiting on the mutex the waiter holds) must be exempt.
  for (const Violation& v : vs) {
    EXPECT_EQ(v.message.find("WaitRight"), std::string::npos) << v.message;
  }
}

TEST(FlexcheckTest, RunnableCoverage) {
  const auto vs = Analyze("runnable");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "runnable-coverage");
  EXPECT_NE(vs[0].message.find("DrainForever"), std::string::npos);
  // DrainPolled has the identical loop with a poll and must be silent.
}

TEST(FlexcheckTest, RegistryDriftBothDirections) {
  const auto vs = Analyze("registry");
  EXPECT_EQ(CountRule(vs, "registry-drift"), 8u);
  // Used-but-unregistered, one per registry kind.
  EXPECT_TRUE(HasViolation(vs, "registry-drift", "mystery.site"));
  EXPECT_TRUE(HasViolation(vs, "registry-drift", "kMissingTotal"));
  EXPECT_TRUE(HasViolation(vs, "registry-drift", "\"mystery\""));
  // Registered-but-dead, one per registry kind.
  EXPECT_TRUE(HasViolation(vs, "registry-drift", "dead.site"));
  EXPECT_TRUE(HasViolation(vs, "registry-drift", "kDeadTotal"));
  EXPECT_TRUE(HasViolation(vs, "registry-drift", "\"dead\""));
  // Raw literal where a metrics:: constant is required.
  EXPECT_TRUE(HasViolation(vs, "registry-drift", "fixture_raw_literal"));
  // Wrong category against the span table.
  EXPECT_TRUE(HasViolation(vs, "registry-drift", "category \"storage\""));
}

TEST(FlexcheckTest, WaiverWithoutJustification) {
  const auto vs = Analyze("waiver");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "waiver-justification");
  EXPECT_EQ(vs[0].line, 9u);  // Naked() — both justified forms are silent.
}

TEST(FlexcheckTest, CleanFixtureIsSilent) {
  const auto vs = Analyze("clean");
  EXPECT_TRUE(vs.empty());
}

TEST(FlexcheckTest, RealTreeIsClean) {
  // The repo's own src/ must stay at zero violations — the same invariant
  // the `flexcheck` ctest enforces, asserted here through the library API
  // so a regression names the rule that broke.
  const auto vs = AnalyzeTree(FLEXCHECK_REPO_ROOT);
  for (const Violation& v : vs) {
    ADD_FAILURE() << v.file << ":" << v.line << " [" << v.rule << "] "
                  << v.message;
  }
}

TEST(FlexcheckTest, ModelSeesTheStack) {
  // Sanity floor: the scanner must actually parse the tree (a parser
  // regression that silently drops functions would otherwise make every
  // rule vacuously pass).
  Model m = BuildModel(FLEXCHECK_REPO_ROOT);
  EXPECT_GT(m.functions.size(), 500u);
  EXPECT_GT(m.mutexes.size(), 10u);
  EXPECT_FALSE(m.fault_registry.empty());
  EXPECT_FALSE(m.metric_registry.empty());
  EXPECT_FALSE(m.span_table.empty());
}

}  // namespace
}  // namespace flexcheck
