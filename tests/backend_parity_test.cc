// Cross-backend parity: the same generated graph served through GRIN by
// all five storage backends (simple CSR, vineyard, GART, LiveGraph,
// GraphAr) must yield bit-identical analytics results. Vid numbering is a
// backend-private detail, so every traversal below goes through the
// index trait (oid -> vid -> oid) and normalizes adjacency to sorted oid
// lists; after that, PageRank runs the exact same FP operations in the
// exact same order for every backend, making EXPECT_EQ on doubles the
// honest comparison, not an approximation.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "datagen/generators.h"
#include "grin/grin.h"
#include "storage/gart/gart_store.h"
#include "storage/graphar/graphar.h"
#include "storage/livegraph/livegraph_store.h"
#include "storage/simple.h"
#include "storage/vineyard/vineyard_store.h"

namespace flex {
namespace {

/// One backend under test: a GRIN handle plus whatever owning objects keep
/// it valid.
struct Backend {
  std::string name;
  const grin::GrinGraph* graph = nullptr;
  std::shared_ptr<void> owner;  ///< Keeps store (+ snapshot) alive.
};

/// The shared input graph. Duplicate (src, dst) pairs are removed so
/// backends that may normalize multi-edges cannot disagree with those
/// that keep them.
EdgeList ParityGraph() {
  EdgeList list = datagen::GenerateUniform(120, 900, 77);
  std::sort(list.edges.begin(), list.edges.end(),
            [](const RawEdge& a, const RawEdge& b) {
              return a.src != b.src ? a.src < b.src : a.dst < b.dst;
            });
  list.edges.erase(std::unique(list.edges.begin(), list.edges.end(),
                               [](const RawEdge& a, const RawEdge& b) {
                                 return a.src == b.src && a.dst == b.dst;
                               }),
                   list.edges.end());
  return list;
}

std::vector<Backend> BuildBackends(const EdgeList& list) {
  std::vector<Backend> backends;

  {
    auto store = std::make_shared<storage::SimpleCsrStore>(list);
    std::shared_ptr<grin::GrinGraph> g = store->GetGrinHandle();
    backends.push_back(
        {"simple", g.get(),
         std::make_shared<std::pair<decltype(store), decltype(g)>>(store, g)});
  }
  {
    PropertyGraphData data =
        storage::MakeSimpleGraphData(list, /*with_weights=*/false);
    std::shared_ptr<storage::VineyardStore> store =
        std::move(storage::VineyardStore::Build(data).value());
    std::shared_ptr<grin::GrinGraph> g = store->GetGrinHandle();
    backends.push_back(
        {"vineyard", g.get(),
         std::make_shared<std::pair<decltype(store), decltype(g)>>(store, g)});
  }
  {
    PropertyGraphData data =
        storage::MakeSimpleGraphData(list, /*with_weights=*/false);
    std::shared_ptr<storage::GartStore> store =
        std::move(storage::GartStore::Build(data).value());
    std::shared_ptr<grin::GrinGraph> g = store->GetSnapshot();
    backends.push_back(
        {"gart", g.get(),
         std::make_shared<std::pair<decltype(store), decltype(g)>>(store, g)});
  }
  {
    std::shared_ptr<storage::LiveGraphStore> store =
        std::move(storage::LiveGraphStore::Build(list));
    std::shared_ptr<grin::GrinGraph> g = store->GetSnapshot();
    backends.push_back(
        {"livegraph", g.get(),
         std::make_shared<std::pair<decltype(store), decltype(g)>>(store, g)});
  }
  {
    PropertyGraphData data =
        storage::MakeSimpleGraphData(list, /*with_weights=*/false);
    const std::string path = testing::TempDir() + "backend_parity.gar";
    EXPECT_TRUE(storage::graphar::WriteGraphAr(path, data).ok());
    std::shared_ptr<storage::graphar::GraphArReader> reader =
        std::move(storage::graphar::GraphArReader::Open(path).value());
    std::shared_ptr<grin::GrinGraph> g =
        std::move(reader->OpenDirect().value());
    backends.push_back(
        {"graphar", g.get(),
         std::make_shared<std::pair<decltype(reader), decltype(g)>>(reader,
                                                                    g)});
  }
  return backends;
}

/// Out-adjacency normalized to sorted oid lists, indexed by oid.
std::vector<std::vector<oid_t>> OidAdjacency(const grin::GrinGraph& g,
                                             oid_t n) {
  std::vector<std::vector<oid_t>> out(static_cast<size_t>(n));
  for (oid_t o = 0; o < n; ++o) {
    Result<vid_t> v = g.FindVertex(0, o);
    EXPECT_TRUE(v.ok()) << g.backend_name() << " oid " << o;
    grin::ForEachAdj(g, v.value(), Direction::kOut, 0,
                     [&](vid_t nbr, double, eid_t) {
                       out[static_cast<size_t>(o)].push_back(g.GetOid(nbr));
                     });
    std::sort(out[static_cast<size_t>(o)].begin(),
              out[static_cast<size_t>(o)].end());
  }
  return out;
}

/// Textbook PageRank over pre-normalized adjacency. Identical inputs →
/// identical FP operation order → bit-identical output.
std::vector<double> PageRank(const std::vector<std::vector<oid_t>>& out,
                             int iters) {
  const size_t n = out.size();
  const double kDamping = 0.85;
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (int it = 0; it < iters; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (size_t o = 0; o < n; ++o) {
      if (out[o].empty()) {
        dangling += rank[o];
        continue;
      }
      const double share = rank[o] / static_cast<double>(out[o].size());
      for (oid_t d : out[o]) next[static_cast<size_t>(d)] += share;
    }
    const double base =
        (1.0 - kDamping + kDamping * dangling) / static_cast<double>(n);
    for (size_t o = 0; o < n; ++o) rank[o] = base + kDamping * next[o];
  }
  return rank;
}

/// Sorted multiset of 2-hop out-neighbor oids of `source`, walked through
/// VisitAdj live (not the cached lists) to exercise each backend's
/// adjacency path twice.
std::vector<oid_t> TwoHop(const grin::GrinGraph& g, oid_t source) {
  std::vector<oid_t> result;
  Result<vid_t> v = g.FindVertex(0, source);
  EXPECT_TRUE(v.ok());
  std::vector<vid_t> hop1;
  grin::ForEachAdj(g, v.value(), Direction::kOut, 0,
                   [&](vid_t nbr, double, eid_t) { hop1.push_back(nbr); });
  for (vid_t h : hop1) {
    grin::ForEachAdj(g, h, Direction::kOut, 0, [&](vid_t nbr, double, eid_t) {
      result.push_back(g.GetOid(nbr));
    });
  }
  std::sort(result.begin(), result.end());
  return result;
}

TEST(BackendParityTest, TopologyAgreesAcrossAllBackends) {
  const EdgeList list = ParityGraph();
  const auto backends = BuildBackends(list);
  ASSERT_EQ(backends.size(), 5u);
  for (const Backend& b : backends) {
    EXPECT_EQ(b.graph->NumVertices(), list.num_vertices) << b.name;
    EXPECT_EQ(b.graph->NumVerticesOfLabel(0), list.num_vertices) << b.name;
  }
  const auto reference = OidAdjacency(*backends[0].graph, list.num_vertices);
  size_t total_edges = 0;
  for (const auto& nbrs : reference) total_edges += nbrs.size();
  EXPECT_EQ(total_edges, list.num_edges());
  for (size_t i = 1; i < backends.size(); ++i) {
    const auto adj = OidAdjacency(*backends[i].graph, list.num_vertices);
    EXPECT_EQ(adj, reference) << backends[i].name << " vs "
                              << backends[0].name;
  }
  // Degree through the dedicated accessor matches the visited adjacency.
  for (const Backend& b : backends) {
    for (oid_t o = 0; o < list.num_vertices; o += 7) {
      const vid_t v = b.graph->FindVertex(0, o).value();
      EXPECT_EQ(b.graph->Degree(v, Direction::kOut, 0),
                reference[static_cast<size_t>(o)].size())
          << b.name << " oid " << o;
    }
  }
}

TEST(BackendParityTest, PageRankIsBitIdenticalAcrossBackends) {
  const EdgeList list = ParityGraph();
  const auto backends = BuildBackends(list);
  const int kIters = 20;
  const std::vector<double> reference =
      PageRank(OidAdjacency(*backends[0].graph, list.num_vertices), kIters);
  double sum = 0.0;
  for (double r : reference) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-9);  // Ranks stay a distribution.
  for (size_t i = 1; i < backends.size(); ++i) {
    const std::vector<double> ranks =
        PageRank(OidAdjacency(*backends[i].graph, list.num_vertices), kIters);
    ASSERT_EQ(ranks.size(), reference.size());
    for (size_t o = 0; o < ranks.size(); ++o) {
      // Bit-identical, not approximately equal: same data, same ops.
      EXPECT_EQ(ranks[o], reference[o])
          << backends[i].name << " diverges at oid " << o;
    }
  }
}

TEST(BackendParityTest, TwoHopNeighborhoodsAgreeAcrossBackends) {
  const EdgeList list = ParityGraph();
  const auto backends = BuildBackends(list);
  for (oid_t source : {oid_t{0}, oid_t{13}, oid_t{59}, oid_t{118}}) {
    const auto reference = TwoHop(*backends[0].graph, source);
    for (size_t i = 1; i < backends.size(); ++i) {
      EXPECT_EQ(TwoHop(*backends[i].graph, source), reference)
          << backends[i].name << " source " << source;
    }
  }
}

}  // namespace
}  // namespace flex
