// WAL unit tests: record codec round-trips, the recovery corruption
// matrix (torn tail / truncated mid-record / bit-flipped CRC / duplicated
// committed record), and the record-type drift guard that keeps the
// replay switch total.

#include "storage/wal.h"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/fault.h"
#include "common/varint.h"
#include "gtest/gtest.h"

namespace flex::storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Injector::Instance().DisarmAll(); }
  void TearDown() override {
    fault::Injector::Instance().DisarmAll();
    for (const std::string& p : paths_) {
      std::error_code ec;
      std::filesystem::remove(p, ec);
    }
  }

  /// Unique file in the build directory (tests never write outside the
  /// repo tree), removed on teardown.
  std::string TempPath() {
    static std::atomic<int> counter{0};
    std::string p = "flex_wal_test_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter++) + ".wal";
    paths_.push_back(p);
    return p;
  }

  std::vector<std::string> paths_;
};

WalRecord AddVertexRecord(uint64_t seq, label_t label, oid_t oid,
                          std::vector<PropertyValue> props) {
  WalRecord r;
  r.seq = seq;
  r.type = WalRecordType::kAddVertex;
  r.label = label;
  r.src = oid;
  r.props = std::move(props);
  return r;
}

WalRecord AddEdgeRecord(uint64_t seq, label_t label, oid_t src, oid_t dst,
                        double weight, int64_t ts) {
  WalRecord r;
  r.seq = seq;
  r.type = WalRecordType::kAddEdge;
  r.label = label;
  r.src = src;
  r.dst = dst;
  r.weight = weight;
  r.ts = ts;
  return r;
}

WalRecord CommitRecord(uint64_t seq, version_t epoch, uint64_t count) {
  WalRecord r;
  r.seq = seq;
  r.type = WalRecordType::kCommitBatch;
  r.epoch = epoch;
  r.record_count = count;
  return r;
}

std::vector<uint8_t> FrameOf(const WalRecord& r) {
  std::vector<uint8_t> payload;
  EncodeWalRecord(r, &payload);
  std::vector<uint8_t> frame;
  AppendWalFrame(payload.data(), payload.size(), &frame);
  return frame;
}

/// Writes `frames` byte-for-byte after a fresh header.
void WriteLog(const std::string& path, const std::vector<uint8_t>& frames) {
  auto writer = WalWriter::Open(path, 0);
  ASSERT_TRUE(writer.ok()) << writer.status().message();
  ASSERT_TRUE(writer.value()->Append(frames.data(), frames.size()).ok());
  ASSERT_TRUE(writer.value()->Sync().ok());
}

Result<WalReplayStats> Replay(const std::string& path,
                              std::vector<WalRecord>* out) {
  return ReplayWal(path, [out](const WalRecord& r) {
    out->push_back(r);
    return Status::OK();
  });
}

/// Two committed batches: 2 records + commit, then 1 record + commit.
std::vector<uint8_t> TwoBatchLog() {
  std::vector<uint8_t> bytes;
  for (const WalRecord& r :
       {AddVertexRecord(1, 0, 100, {PropertyValue(std::string("ann"))}),
        AddEdgeRecord(2, 0, 100, 100, 2.5, 7), CommitRecord(3, 1, 2),
        AddEdgeRecord(4, 0, 100, 100, -1.25, -9), CommitRecord(5, 2, 1)}) {
    const auto f = FrameOf(r);
    bytes.insert(bytes.end(), f.begin(), f.end());
  }
  return bytes;
}

// ------------------------------------------------------------------ codec

TEST_F(WalTest, RecordRoundTripsAllTypes) {
  std::vector<WalRecord> originals;
  originals.push_back(AddVertexRecord(
      9, 3, -42,
      {PropertyValue(), PropertyValue(true), PropertyValue(int64_t{-7}),
       PropertyValue(3.5), PropertyValue(std::string("bin\0ry", 6))}));
  originals.push_back(AddEdgeRecord(10, 2, -1, 99999999999LL, 0.125, -3));
  {
    WalRecord r;
    r.seq = 11;
    r.type = WalRecordType::kUpdateProperty;
    r.label = 1;
    r.src = 77;
    r.col = 4;
    r.props.push_back(PropertyValue(std::string("renamed")));
    originals.push_back(r);
  }
  {
    WalRecord r;
    r.seq = 12;
    r.type = WalRecordType::kDeleteEdge;
    r.label = 0;
    r.src = 5;
    r.dst = 6;
    originals.push_back(r);
  }
  originals.push_back(CommitRecord(13, 42, 4));

  for (const WalRecord& r : originals) {
    std::vector<uint8_t> payload;
    EncodeWalRecord(r, &payload);
    auto decoded = DecodeWalRecord(payload.data(), payload.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    const WalRecord& d = decoded.value();
    EXPECT_EQ(d.seq, r.seq);
    EXPECT_EQ(d.type, r.type);
    EXPECT_EQ(d.label, r.label);
    EXPECT_EQ(d.src, r.src);
    EXPECT_EQ(d.dst, r.dst);
    EXPECT_EQ(d.weight, r.weight);
    EXPECT_EQ(d.ts, r.ts);
    EXPECT_EQ(d.col, r.col);
    EXPECT_EQ(d.epoch, r.epoch);
    EXPECT_EQ(d.record_count, r.record_count);
    ASSERT_EQ(d.props.size(), r.props.size());
    for (size_t i = 0; i < d.props.size(); ++i) {
      EXPECT_EQ(d.props[i].type(), r.props[i].type());
      EXPECT_TRUE(d.props[i] == r.props[i]);
    }
  }
}

TEST_F(WalTest, DoubleRoundTripIsBitExact) {
  // -0.0 vs 0.0 and a NaN-adjacent denormal must survive the codec for
  // the bit-identical recovery guarantee.
  for (double w : {-0.0, 5e-324, 1.0 / 3.0, -1e300}) {
    std::vector<uint8_t> payload;
    EncodeWalRecord(AddEdgeRecord(1, 0, 0, 0, w, 0), &payload);
    auto decoded = DecodeWalRecord(payload.data(), payload.size());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(std::bit_cast<uint64_t>(decoded.value().weight),
              std::bit_cast<uint64_t>(w));
  }
}

// ------------------------------------------------------- the drift guard

TEST_F(WalTest, RecordTypeNamesDistinctAndTotal) {
  std::set<std::string> names;
  int count = 0;
  // Walk past the last known type until the table answers "Unknown" —
  // mirrors the StatusCode drift guard: adding a record type without
  // extending WalRecordTypeName() (and with it the replay switch, which
  // the compiler checks via -Wswitch on the same enum) fails here.
  for (int t = 1; t < 64; ++t) {
    const char* name = WalRecordTypeName(static_cast<WalRecordType>(t));
    if (std::string(name) == "Unknown") break;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
    ++count;
  }
  EXPECT_EQ(count, static_cast<int>(WalRecordType::kCommitBatch))
      << "WalRecordTypeName has a gap before the last enumerator";
}

TEST_F(WalTest, UnknownTypeByteWithValidCrcFailsReplay) {
  // A frame whose payload passes CRC but carries an unregistered type is
  // decoder drift (or deliberate tampering), never a torn write: fail-stop.
  std::vector<uint8_t> payload;
  PutVarint64(&payload, 1);  // seq
  payload.push_back(99);     // type: off the table
  std::vector<uint8_t> frame;
  AppendWalFrame(payload.data(), payload.size(), &frame);

  const std::string path = TempPath();
  WriteLog(path, frame);
  std::vector<WalRecord> got;
  auto replayed = Replay(path, &got);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(got.empty());
}

// ------------------------------------------------- the corruption matrix

TEST_F(WalTest, CleanLogReplaysBothBatches) {
  const std::string path = TempPath();
  WriteLog(path, TwoBatchLog());
  std::vector<WalRecord> got;
  auto replayed = Replay(path, &got);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  const WalReplayStats& s = replayed.value();
  EXPECT_EQ(s.applied_records, 3u);
  EXPECT_EQ(s.committed_batches, 2u);
  EXPECT_EQ(s.duplicates_skipped, 0u);
  EXPECT_FALSE(s.torn_tail);
  EXPECT_EQ(s.last_seq, 5u);
  EXPECT_EQ(s.valid_bytes,
            kWalHeaderSize + TwoBatchLog().size());
  // Delivery order: batch records then their commit record, per batch.
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[2].type, WalRecordType::kCommitBatch);
  EXPECT_EQ(got[2].epoch, 1u);
  EXPECT_EQ(got[4].epoch, 2u);
}

TEST_F(WalTest, TornTailTruncatesToLastCommit) {
  const std::string path = TempPath();
  const auto bytes = TwoBatchLog();
  WriteLog(path, bytes);
  // Cut the file mid-way through the second batch's bytes (inside a
  // frame): exactly what a crash between write() and fsync() leaves.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 3);

  std::vector<WalRecord> got;
  auto replayed = Replay(path, &got);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  const WalReplayStats& s = replayed.value();
  EXPECT_TRUE(s.torn_tail);
  EXPECT_EQ(s.committed_batches, 1u);
  EXPECT_EQ(s.applied_records, 2u);
  EXPECT_LT(s.valid_bytes, full - 3);
  EXPECT_EQ(s.last_seq, 3u);

  // Reopening at valid_bytes repairs the tail; a fresh replay of the
  // repaired file is clean and identical.
  auto writer = WalWriter::Open(path, s.valid_bytes);
  ASSERT_TRUE(writer.ok());
  writer.value().reset();  // Close before inspecting the file.
  EXPECT_EQ(std::filesystem::file_size(path), s.valid_bytes);
  std::vector<WalRecord> again;
  auto second = Replay(path, &again);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().torn_tail);
  EXPECT_EQ(second.value().committed_batches, 1u);
}

TEST_F(WalTest, TruncatedMidRecordDropsUncommittedBatch) {
  // Cut inside the *first* record of batch 2 — the commit record of batch
  // 1 stays intact, so recovery lands exactly on epoch 1.
  const std::string path = TempPath();
  std::vector<uint8_t> bytes;
  size_t batch1_end = 0;
  for (const WalRecord& r :
       {AddVertexRecord(1, 0, 100, {}), CommitRecord(2, 1, 1),
        AddEdgeRecord(3, 0, 100, 100, 1.0, 0)}) {
    const auto f = FrameOf(r);
    bytes.insert(bytes.end(), f.begin(), f.end());
    if (r.seq == 2) batch1_end = bytes.size();
  }
  WriteLog(path, bytes);
  std::filesystem::resize_file(path, kWalHeaderSize + batch1_end + 2);

  std::vector<WalRecord> got;
  auto replayed = Replay(path, &got);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed.value().torn_tail);
  EXPECT_EQ(replayed.value().committed_batches, 1u);
  EXPECT_EQ(replayed.value().valid_bytes, kWalHeaderSize + batch1_end);
}

TEST_F(WalTest, BitFlippedPayloadFailsStop) {
  const std::string path = TempPath();
  const auto bytes = TwoBatchLog();
  WriteLog(path, bytes);
  // Flip one bit inside the first record's payload (well past the header
  // and the frame prefix) — a complete frame whose CRC now lies.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kWalHeaderSize + 6));
    char b = 0;
    f.seekg(static_cast<std::streamoff>(kWalHeaderSize + 6));
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x10);
    f.seekp(static_cast<std::streamoff>(kWalHeaderSize + 6));
    f.write(&b, 1);
  }
  std::vector<WalRecord> got;
  auto replayed = Replay(path, &got);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kDataLoss);
}

TEST_F(WalTest, DuplicatedCommittedRecordsSkipIdempotently) {
  // Re-append the first batch's bytes after the log (a retried append
  // whose ack was lost): replay must count and skip every duplicate.
  const std::string path = TempPath();
  std::vector<uint8_t> bytes = TwoBatchLog();
  std::vector<uint8_t> dup;
  for (const WalRecord& r :
       {AddVertexRecord(1, 0, 100, {PropertyValue(std::string("ann"))}),
        AddEdgeRecord(2, 0, 100, 100, 2.5, 7), CommitRecord(3, 1, 2)}) {
    const auto f = FrameOf(r);
    dup.insert(dup.end(), f.begin(), f.end());
  }
  bytes.insert(bytes.end(), dup.begin(), dup.end());
  WriteLog(path, bytes);

  std::vector<WalRecord> got;
  auto replayed = Replay(path, &got);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  const WalReplayStats& s = replayed.value();
  EXPECT_EQ(s.committed_batches, 2u);
  EXPECT_EQ(s.applied_records, 3u);  // Duplicates not re-applied.
  EXPECT_EQ(s.duplicates_skipped, 3u);
  EXPECT_FALSE(s.torn_tail);
  // The duplicate region ends in a commit record, so it stays valid prefix.
  EXPECT_EQ(s.valid_bytes, kWalHeaderSize + bytes.size());
}

TEST_F(WalTest, UncommittedTailRecordsAreDropped) {
  const std::string path = TempPath();
  std::vector<uint8_t> bytes = TwoBatchLog();
  const auto orphan = FrameOf(AddEdgeRecord(6, 0, 100, 100, 9.0, 1));
  bytes.insert(bytes.end(), orphan.begin(), orphan.end());
  WriteLog(path, bytes);

  std::vector<WalRecord> got;
  auto replayed = Replay(path, &got);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().committed_batches, 2u);
  EXPECT_EQ(replayed.value().dropped_tail_records, 1u);
  // valid_bytes excludes the orphan: reopening truncates it away.
  EXPECT_EQ(replayed.value().valid_bytes,
            kWalHeaderSize + bytes.size() - orphan.size());
}

TEST_F(WalTest, MissingFileIsAnEmptyLog) {
  std::vector<WalRecord> got;
  auto replayed = Replay("flex_wal_test_never_created.wal", &got);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().committed_batches, 0u);
  EXPECT_EQ(replayed.value().valid_bytes, 0u);
  EXPECT_TRUE(got.empty());
}

TEST_F(WalTest, BadMagicFailsStop) {
  const std::string path = TempPath();
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTAWAL1 and then some";
  }
  std::vector<WalRecord> got;
  auto replayed = Replay(path, &got);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kDataLoss);
}

// ------------------------------------------------------- injected faults

TEST_F(WalTest, InjectedTornAppendLeavesRepairableTail) {
  const std::string path = TempPath();
  {
    auto writer = WalWriter::Open(path, 0);
    ASSERT_TRUE(writer.ok());
    const auto bytes = TwoBatchLog();
    fault::Policy policy;  // Fail the first hit.
    fault::Injector::Instance().Arm("wal.append", policy);
    Status st = writer.value()->Append(bytes.data(), bytes.size());
    EXPECT_EQ(st.code(), StatusCode::kIoError);
    fault::Injector::Instance().DisarmAll();
  }
  // Half the buffer landed: replay truncates cleanly instead of failing.
  std::vector<WalRecord> got;
  auto replayed = Replay(path, &got);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  EXPECT_TRUE(replayed.value().torn_tail);
}

TEST_F(WalTest, InjectedLostSyncRewindsToDurableEdge) {
  const std::string path = TempPath();
  auto writer = WalWriter::Open(path, 0);
  ASSERT_TRUE(writer.ok());
  WalWriter& w = *writer.value();
  const uint64_t durable = w.synced_offset();
  const auto bytes = TwoBatchLog();
  ASSERT_TRUE(w.Append(bytes.data(), bytes.size()).ok());

  fault::Policy policy;
  fault::Injector::Instance().Arm("wal.sync", policy);
  EXPECT_EQ(w.Sync().code(), StatusCode::kIoError);
  fault::Injector::Instance().DisarmAll();

  // Everything since the last barrier vanished, as on a machine crash.
  EXPECT_EQ(w.offset(), durable);
  EXPECT_EQ(std::filesystem::file_size(path), durable);
  std::vector<WalRecord> got;
  auto replayed = Replay(path, &got);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().committed_batches, 0u);
  EXPECT_FALSE(replayed.value().torn_tail);
}

}  // namespace
}  // namespace flex::storage
