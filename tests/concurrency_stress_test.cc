// Contended stress tests for the concurrency primitives the emulated
// engines share (ThreadPool, BoundedQueue, Barrier, MessageManager). These
// are sized so a TSan build (tools/check.sh tsan) actually explores the
// interleavings: 8+ threads, small capacities to force blocking, and
// repeated construct/destroy churn to cover startup/shutdown edges.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/barrier.h"
#include "common/queue.h"
#include "common/thread_pool.h"
#include "grape/message_manager.h"

namespace flex {
namespace {

// ------------------------------------------------------- BoundedQueue

// 8 producers and 8 consumers hammer a deliberately tiny queue so both
// sides block constantly; every pushed value must be popped exactly once.
TEST(ConcurrencyStressTest, QueueContendedProducersAndConsumers) {
  constexpr size_t kProducers = 8;
  constexpr size_t kConsumers = 8;
  constexpr uint64_t kPerProducer = 5000;
  BoundedQueue<uint64_t> queue(4);

  std::atomic<uint64_t> popped_sum{0};
  std::atomic<uint64_t> popped_count{0};
  std::atomic<size_t> producers_left{kProducers};

  ThreadPool pool(kProducers + kConsumers);
  for (size_t p = 0; p < kProducers; ++p) {
    pool.Submit([p, &queue, &producers_left] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
      if (producers_left.fetch_sub(1) == 1) queue.Close();
    });
  }
  for (size_t c = 0; c < kConsumers; ++c) {
    pool.Submit([&queue, &popped_sum, &popped_count] {
      while (auto item = queue.Pop()) {
        popped_sum.fetch_add(*item, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  pool.Wait();

  const uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped_count.load(), n);
  EXPECT_EQ(popped_sum.load(), n * (n - 1) / 2);
}

// Regression for the lost-wakeup audit: Close() must release EVERY blocked
// waiter — 8 producers stuck on a full queue and 8 consumers stuck on an
// empty one. A notify_one in Close() would strand all but one of each and
// hang this test.
TEST(ConcurrencyStressTest, QueueCloseReleasesManyBlockedWaiters) {
  constexpr size_t kWaiters = 8;
  BoundedQueue<int> full_queue(1);
  BoundedQueue<int> empty_queue(1);
  ASSERT_TRUE(full_queue.Push(0));  // Producers below now block.

  std::atomic<size_t> rejected_pushes{0};
  std::atomic<size_t> drained_pops{0};
  std::atomic<size_t> blocked_started{0};

  ThreadPool pool(2 * kWaiters + 1);
  for (size_t i = 0; i < kWaiters; ++i) {
    pool.Submit([&full_queue, &rejected_pushes, &blocked_started] {
      blocked_started.fetch_add(1);
      if (!full_queue.Push(1)) rejected_pushes.fetch_add(1);
    });
    pool.Submit([&empty_queue, &drained_pops, &blocked_started] {
      blocked_started.fetch_add(1);
      if (!empty_queue.Pop().has_value()) drained_pops.fetch_add(1);
    });
  }
  pool.Submit([&] {
    // Let the waiters reach their blocking calls before closing. (Close is
    // correct regardless of arrival order; the sleep just makes the test
    // actually cover the blocked-waiter path rather than fast-path returns.)
    while (blocked_started.load() < 2 * kWaiters) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    full_queue.Close();
    empty_queue.Close();
  });
  pool.Wait();

  EXPECT_EQ(rejected_pushes.load(), kWaiters);
  EXPECT_EQ(drained_pops.load(), kWaiters);
}

// ---------------------------------------------------------- ThreadPool

// Construct/destroy churn: shutdown must join workers with tasks still
// finishing, and Wait() must be exact (no task lost, no early return).
TEST(ConcurrencyStressTest, ThreadPoolChurn) {
  constexpr int kPools = 25;
  constexpr int kTasksPerPool = 256;
  std::atomic<int> executed{0};
  for (int round = 0; round < kPools; ++round) {
    ThreadPool pool(8);
    for (int t = 0; t < kTasksPerPool; ++t) {
      pool.Submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(executed.load(), kPools * kTasksPerPool);
}

// Many threads block in Wait() simultaneously; the inflight_==0 transition
// must release all of them (SignalAll), not just one.
TEST(ConcurrencyStressTest, ThreadPoolWaitReleasesAllWaiters) {
  constexpr size_t kWaiters = 8;
  ThreadPool work_pool(2);
  ThreadPool waiter_pool(kWaiters);
  std::atomic<size_t> released{0};

  for (int i = 0; i < 64; ++i) {
    work_pool.Submit(
        [] { std::this_thread::sleep_for(std::chrono::microseconds(100)); });
  }
  for (size_t w = 0; w < kWaiters; ++w) {
    waiter_pool.Submit([&work_pool, &released] {
      work_pool.Wait();
      released.fetch_add(1);
    });
  }
  waiter_pool.Wait();
  EXPECT_EQ(released.load(), kWaiters);
}

// ------------------------------------------------------------- Barrier

// 8 threads cross the same barrier 500 times; each generation elects
// exactly one leader and nobody skips ahead a round.
TEST(ConcurrencyStressTest, BarrierManyRounds) {
  constexpr size_t kParties = 8;
  constexpr int kRounds = 500;
  Barrier barrier(kParties);
  std::atomic<int> leaders{0};
  std::vector<std::atomic<int>> arrivals(kRounds);
  for (auto& a : arrivals) a.store(0);

  ThreadPool pool(kParties);
  for (size_t p = 0; p < kParties; ++p) {
    pool.Submit([&barrier, &leaders, &arrivals] {
      for (int r = 0; r < kRounds; ++r) {
        arrivals[r].fetch_add(1);
        if (barrier.Await()) leaders.fetch_add(1);
        // After the barrier, every party must have arrived at round r.
        ASSERT_EQ(arrivals[r].load(), static_cast<int>(kParties));
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(leaders.load(), kRounds);
}

// ------------------------------------------------------ MessageManager

// An 8-fragment superstep exchange in both wire modes: every fragment sends
// a round-tagged value to every fragment each round, the barrier leader
// flushes, and everyone must receive exactly nfrag messages of the current
// round. This is the GRAPE §6 superstep lifecycle under real contention.
void RunSuperstepExchange(grape::MessageMode mode) {
  constexpr partition_t kFrags = 8;
  constexpr int kRounds = 100;
  grape::MessageManager<uint64_t> messages(kFrags, mode);
  Barrier barrier(kFrags);
  std::atomic<uint64_t> total_received{0};

  ThreadPool pool(kFrags);
  for (partition_t f = 0; f < kFrags; ++f) {
    pool.Submit([f, &messages, &barrier, &total_received] {
      for (int round = 0; round < kRounds; ++round) {
        for (partition_t dst = 0; dst < kFrags; ++dst) {
          messages.Send(f, dst, /*target=*/f, static_cast<uint64_t>(round));
        }
        if (barrier.Await()) {
          ASSERT_EQ(messages.Flush(), static_cast<size_t>(kFrags));
        }
        barrier.Await();
        uint64_t count = 0;
        const Status received =
            messages.Receive(f, [&](vid_t sender, const uint64_t& msg) {
              ASSERT_LT(sender, static_cast<vid_t>(kFrags));
              ASSERT_EQ(msg, static_cast<uint64_t>(round));
              ++count;
            });
        ASSERT_TRUE(received.ok()) << received.ToString();
        ASSERT_EQ(count, static_cast<uint64_t>(kFrags));
        total_received.fetch_add(count, std::memory_order_relaxed);
        // Don't let fast fragments race into the next round's sends while
        // stragglers still read this round's incoming buffers.
        barrier.Await();
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(total_received.load(),
            static_cast<uint64_t>(kFrags) * kFrags * kRounds);
}

TEST(ConcurrencyStressTest, SuperstepExchangeAggregated) {
  RunSuperstepExchange(grape::MessageMode::kAggregated);
}

TEST(ConcurrencyStressTest, SuperstepExchangePerMessage) {
  RunSuperstepExchange(grape::MessageMode::kPerMessage);
}

}  // namespace
}  // namespace flex
