// The observability layer's own verification net: counter/gauge/histogram
// semantics (including sharded concurrent increments), deterministic
// Prometheus-style exposition with a drift guard over the standard metric
// set, per-query trace structure, and end-to-end checks that the engines
// actually feed the registry and traces while executing real work.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metric_names.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "datagen/generators.h"
#include "graph/partitioner.h"
#include "grape/apps/pagerank.h"
#include "query/service.h"
#include "storage/simple.h"
#include "storage/vineyard/vineyard_store.h"

namespace flex {
namespace {

using metrics::MetricsRegistry;

MetricsRegistry& Registry() { return MetricsRegistry::Instance(); }

// ------------------------------------------------------------- primitives

TEST(MetricsTest, CounterAccumulatesAcrossThreads) {
  metrics::Counter* c = Registry().GetCounter("test_counter_threads_total");
  c->ResetForTesting();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, RegistryReturnsSamePointerForSameName) {
  metrics::Counter* a = Registry().GetCounter("test_counter_identity_total");
  metrics::Counter* b = Registry().GetCounter("test_counter_identity_total");
  EXPECT_EQ(a, b);
}

TEST(MetricsTest, GaugeGoesUpAndDown) {
  metrics::Gauge* g = Registry().GetGauge("test_gauge");
  g->ResetForTesting();
  g->Add(5);
  g->Add(-7);
  EXPECT_EQ(g->Value(), -2);
}

TEST(MetricsTest, HistogramBucketsAreCumulativeAndSumIsExact) {
  metrics::Histogram* h = Registry().GetHistogram("test_histogram_us");
  h->ResetForTesting();
  h->Observe(0);       // <= 1us bucket.
  h->Observe(3);       // <= 5us bucket.
  h->Observe(600);     // <= 1000us bucket.
  h->Observe(999999);  // +Inf bucket.
  EXPECT_EQ(h->TotalCount(), 4u);
  EXPECT_EQ(h->SumMicros(), 0u + 3u + 600u + 999999u);
  EXPECT_EQ(metrics::Histogram::BucketOf(0), 0u);
  EXPECT_EQ(metrics::Histogram::BucketOf(1), 0u);
  EXPECT_EQ(metrics::Histogram::BucketOf(2), 1u);
  EXPECT_EQ(metrics::Histogram::BucketOf(100000), 13u);
  EXPECT_EQ(metrics::Histogram::BucketOf(100001),
            metrics::kLatencyBucketBoundsUs.size());  // +Inf.
}

// ------------------------------------------------------------- exposition

TEST(MetricsTest, RenderIsDeterministic) {
  metrics::TouchStandardMetrics();
  FLEX_COUNTER_ADD(metrics::kQueriesTotal, 3);
  const std::string first = Registry().Render();
  const std::string second = Registry().Render();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(MetricsTest, RenderExposesCountersGaugesAndHistogramSeries) {
  metrics::TouchStandardMetrics();
  Registry().ResetAllForTesting();
  FLEX_COUNTER_ADD(metrics::kQueriesTotal, 2);
  FLEX_GAUGE_ADD(metrics::kHiactorPendingTasks, 4);
  FLEX_HISTOGRAM_OBSERVE_US(metrics::kQueryLatencyUs, 30);
  const std::string text = Registry().Render();
  EXPECT_NE(text.find("# TYPE flex_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("flex_queries_total 2"), std::string::npos);
  EXPECT_NE(text.find("flex_hiactor_pending_tasks 4"), std::string::npos);
  // 30us lands in the le="50" bucket; cumulative buckets and count agree.
  EXPECT_NE(text.find("flex_query_latency_us_bucket{le=\"50\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("flex_query_latency_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("flex_query_latency_us_sum 30"), std::string::npos);
  EXPECT_NE(text.find("flex_query_latency_us_count 1"), std::string::npos);
  // Help text comes from the standard-metric table.
  EXPECT_NE(text.find("# HELP flex_queries_total"), std::string::npos);
}

// The drift guard: this list is the reviewed, alphabetically sorted set of
// standard stack metrics. Adding a metric to metric_names.h (or registering
// a new flex_* series from instrumentation) without updating this list —
// or vice versa — fails the test.
const char* const kExpectedStackMetrics[] = {
    "flex_faults_fired_total",
    "flex_flush_parallel_shards_total",
    "flex_fused_expands_total",
    "flex_fused_rows_pruned_total",
    "flex_fused_scans_total",
    "flex_hiactor_pending_tasks",
    "flex_hiactor_tasks_completed_total",
    "flex_hiactor_tasks_stolen_total",
    "flex_msg_bytes_copy_avoided_total",
    "flex_msg_bytes_flushed_total",
    "flex_msg_retransmits_total",
    "flex_msgs_sent_total",
    "flex_pie_recoveries_total",
    "flex_pie_supersteps_total",
    "flex_pie_superstep_duration_us",
    "flex_plan_cache_evictions_total",
    "flex_plan_cache_hits_total",
    "flex_plan_cache_invalidations_total",
    "flex_plan_cache_misses_total",
    "flex_queries_shed_total",
    "flex_queries_total",
    "flex_query_batches_total",
    "flex_query_failures_total",
    "flex_query_latency_us",
    "flex_query_retries_total",
    "flex_query_rows_per_batch",
    "flex_storage_adj_visits_total",
    "flex_storage_index_lookups_total",
    "flex_storage_scans_total",
    "flex_storage_snapshots_pinned_total",
    "flex_tenant_rejections_total",
    "flex_wal_batches_committed_total",
    "flex_wal_records_appended_total",
    "flex_wal_replay_duplicates_skipped_total",
    "flex_wal_replay_records_total",
    "flex_wal_syncs_total",
    "flex_wal_torn_tails_truncated_total",
};

TEST(MetricsTest, StandardMetricSetMatchesExpectedList) {
  std::vector<std::string> expected(std::begin(kExpectedStackMetrics),
                                    std::end(kExpectedStackMetrics));
  std::sort(expected.begin(), expected.end());

  // metric_names.h's table vs this test's reviewed list.
  std::vector<std::string> table;
  for (const metrics::MetricSpec& spec : metrics::AllStackMetrics()) {
    table.push_back(spec.name);
  }
  std::sort(table.begin(), table.end());
  EXPECT_EQ(table, expected)
      << "metric_names.h drifted from the expected list in metrics_test.cc; "
         "update both together";

  // And the registry itself: after touching the standard set, every flex_*
  // series actually registered must be in the list (instrumentation cannot
  // mint off-list names).
  metrics::TouchStandardMetrics();
  for (const std::string& name : Registry().Names()) {
    if (name.rfind("flex_", 0) != 0) continue;  // Test-local metrics.
    EXPECT_TRUE(std::binary_search(expected.begin(), expected.end(), name))
        << "unexpected registered metric: " << name;
  }
  // Conversely the standard set must all be registered.
  for (const std::string& name : expected) {
    const auto names = Registry().Names();
    EXPECT_TRUE(std::find(names.begin(), names.end(), name) != names.end())
        << "standard metric missing from registry: " << name;
  }
}

TEST(MetricsTest, EveryStandardMetricHasKindAndHelp) {
  for (const metrics::MetricSpec& spec : metrics::AllStackMetrics()) {
    EXPECT_TRUE(metrics::FindStackMetric(spec.name) == &spec);
    const std::string kind = spec.kind;
    EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
        << spec.name;
    EXPECT_GT(std::string(spec.help).size(), 10u) << spec.name;
    const std::string name = spec.name;
    if (kind == "counter") {
      EXPECT_TRUE(name.ends_with("_total")) << name;
    } else if (kind == "histogram") {
      // Histograms carry a unit suffix: `_us` for latencies, or a
      // `_per_<x>` distribution name for value histograms.
      EXPECT_TRUE(name.ends_with("_us") || name.find("_per_") !=
                                               std::string::npos)
          << name;
    }
  }
  EXPECT_EQ(metrics::FindStackMetric("no_such_metric"), nullptr);
}

// ------------------------------------------------------------------ trace

TEST(TraceTest, SpansNestAndDurationsAreConsistent) {
  trace::Trace trace("unit");
  const uint64_t root = trace.BeginSpan("query", "query");
  const uint64_t child1 = trace.BeginSpan("compile", "compile", root);
  trace.EndSpan(child1);
  const uint64_t child2 = trace.BeginSpan("execute", "execute", root);
  trace.EndSpan(child2);
  trace.EndSpan(root);
  const auto spans = trace.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent, trace::kNoParent);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].parent, root);
  EXPECT_LE(trace.ChildDurationMicros(root), trace.SpanDurationMicros(root));
  EXPECT_EQ(trace.SpanDurationMicros(child1),
            spans[1].end_us - spans[1].start_us);
}

TEST(TraceTest, EndSpanKeepsFirstEndTime) {
  trace::Trace trace("unit");
  const uint64_t id = trace.BeginSpan("s", "test");
  trace.EndSpan(id);
  const uint64_t first_end = trace.spans()[0].end_us;
  trace.EndSpan(id);
  EXPECT_EQ(trace.spans()[0].end_us, first_end);
}

TEST(TraceTest, ScopedSpanIsNullSafe) {
  trace::ScopedSpan span(nullptr, "noop", "test");
  EXPECT_EQ(span.id(), trace::kNoParent);
}

TEST(TraceTest, ToJsonIsWellFormedAndEscapes) {
  trace::Trace trace("q\"1\\");
  const uint64_t root = trace.BeginSpan("query", "query");
  trace.EndSpan(root);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"query_id\": \"q\\\"1\\\\\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_us\": "), std::string::npos);
  EXPECT_NE(json.find("\"spans\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"query\""), std::string::npos);
}

// ------------------------------------------------------------ end-to-end

class EndToEndMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EdgeList list = datagen::GenerateUniform(150, 1200, 5);
    store_ = storage::VineyardStore::Build(
                 storage::MakeSimpleGraphData(list, false))
                 .value();
    graph_ = store_->GetGrinHandle();
  }

  std::unique_ptr<storage::VineyardStore> store_;
  std::unique_ptr<grin::GrinGraph> graph_;
};

TEST_F(EndToEndMetricsTest, QueryRunFeedsCountersAndTrace) {
  query::QueryService service(graph_.get(), 2);
  Registry().ResetAllForTesting();

  trace::Trace trace("two-hop");
  query::RunOptions options;
  options.trace = &trace;
  auto rows = service.Run(query::Language::kCypher,
                          "MATCH (a:V)-[:E]->(b:V) WHERE a.id < 10 "
                          "RETURN a.id, count(b) ORDER BY a.id",
                          options);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();

  EXPECT_EQ(Registry().GetCounter(metrics::kQueriesTotal)->Value(), 1u);
  EXPECT_EQ(Registry().GetCounter(metrics::kQueryFailuresTotal)->Value(), 0u);
  EXPECT_EQ(Registry().GetHistogram(metrics::kQueryLatencyUs)->TotalCount(),
            1u);
  EXPECT_GT(Registry().GetCounter(metrics::kStorageScansTotal)->Value(), 0u);

  // Trace structure: a "query" root whose direct children (compile,
  // execute) fit inside it; engine + operator + storage spans below.
  const auto spans = trace.spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].parent, trace::kNoParent);
  std::vector<std::string> names;
  for (const auto& s : spans) names.push_back(s.name);
  EXPECT_TRUE(std::find(names.begin(), names.end(), "compile") != names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "execute") != names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "gaia") != names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "storage.read") !=
              names.end());
  const uint64_t root_us = trace.SpanDurationMicros(spans[0].id);
  EXPECT_LE(trace.ChildDurationMicros(spans[0].id), root_us + 1);
  // Every non-root span closed and nested inside the root interval.
  for (const auto& s : spans) {
    EXPECT_GT(s.end_us, 0u) << s.name << " left open";
    EXPECT_LE(s.end_us, spans[0].end_us + 1) << s.name;
  }
}

TEST_F(EndToEndMetricsTest, FailedQueryCountsAsFailure) {
  query::QueryService service(graph_.get(), 1);
  Registry().ResetAllForTesting();
  auto rows = service.Run(query::Language::kCypher, "THIS IS NOT CYPHER",
                          query::RunOptions{});
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(Registry().GetCounter(metrics::kQueriesTotal)->Value(), 1u);
  EXPECT_EQ(Registry().GetCounter(metrics::kQueryFailuresTotal)->Value(), 1u);
}

TEST_F(EndToEndMetricsTest, PieRunFeedsSuperstepAndMessageCounters) {
  Registry().ResetAllForTesting();
  EdgeList g = datagen::GenerateUniform(100, 800, 11);
  EdgeCutPartitioner part(g.num_vertices, 3);
  auto frags = grape::Partition(g, part);
  const auto ranks = grape::RunPageRank(frags, 5, 0.85);
  EXPECT_EQ(ranks.size(), g.num_vertices);
  EXPECT_GE(Registry().GetCounter(metrics::kPieSuperstepsTotal)->Value(), 5u);
  EXPECT_GT(Registry().GetCounter(metrics::kMsgsSentTotal)->Value(), 0u);
  EXPECT_GT(Registry().GetCounter(metrics::kMsgBytesFlushedTotal)->Value(),
            0u);
  EXPECT_GT(
      Registry().GetHistogram(metrics::kPieSuperstepDurationUs)->TotalCount(),
      0u);
}

}  // namespace
}  // namespace flex
