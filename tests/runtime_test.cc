#include <gtest/gtest.h>

#include <future>

#include "common/random.h"
#include "grape/compat.h"
#include "lang/cypher.h"
#include "query/service.h"
#include "runtime/gaia.h"
#include "runtime/hiactor.h"
#include "storage/simple.h"
#include "storage/vineyard/vineyard_store.h"

namespace flex::runtime {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EdgeList list;
    list.num_vertices = 200;
    Rng rng(8);
    for (int e = 0; e < 1500; ++e) {
      list.edges.push_back({static_cast<vid_t>(rng.Uniform(200)),
                            static_cast<vid_t>(rng.Uniform(200)), 1.0});
    }
    store_ = storage::VineyardStore::Build(
                 storage::MakeSimpleGraphData(list, false))
                 .value();
    graph_ = store_->GetGrinHandle();
  }

  ir::Plan Compile(const std::string& cypher) {
    auto plan = lang::ParseCypher(cypher, graph_->schema());
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return optimizer::Optimize(plan.value(), nullptr);
  }

  std::unique_ptr<storage::VineyardStore> store_;
  std::unique_ptr<grin::GrinGraph> graph_;
};

// ------------------------------------------------------------------ Gaia

TEST_F(RuntimeTest, GaiaShardCountsDoNotChangeResults) {
  const ir::Plan plan = Compile(
      "MATCH (a:V)-[:E]->(b:V)-[:E]->(c:V) WHERE a.id < 20 "
      "RETURN a.id, count(c) AS n ORDER BY a.id");
  std::vector<std::string> reference;
  for (size_t workers : {1u, 2u, 3u, 7u}) {
    GaiaEngine gaia(graph_.get(), workers);
    auto rows = gaia.Run(plan);
    ASSERT_TRUE(rows.ok()) << workers;
    auto lines = query::RowsToStrings(rows.value());
    if (reference.empty()) {
      reference = lines;
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(lines, reference) << workers << " workers";
    }
  }
}

TEST_F(RuntimeTest, GaiaHandlesEmptyResults) {
  GaiaEngine gaia(graph_.get(), 3);
  auto rows = gaia.Run(Compile("MATCH (a:V) WHERE a.id > 100000 RETURN a"));
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows.value().empty());
}

TEST_F(RuntimeTest, GaiaFullyBlockingPlanFallsBackToSequential) {
  // A plan whose first blocking op is immediately after the scan still
  // produces correct global aggregates.
  GaiaEngine gaia(graph_.get(), 4);
  auto rows = gaia.Run(Compile("MATCH (a:V) RETURN count(a)"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(query::RowsToStrings(rows.value())[0], "200");
}

// --------------------------------------------------------------- HiActor

TEST_F(RuntimeTest, HiActorManyConcurrentMixedProcedures) {
  HiActorEngine engine(graph_.get(), 4);
  engine.RegisterProcedure("deg", Compile("MATCH (a:V {id: $0})-[:E]->(b:V) "
                                          "RETURN count(b)"));
  engine.RegisterProcedure("two_hop",
                           Compile("MATCH (a:V {id: $0})-[:E]->(b:V)"
                                   "-[:E]->(c:V) RETURN count(c)"));
  std::vector<std::future<Result<std::vector<ir::Row>>>> futures;
  for (int i = 0; i < 500; ++i) {
    auto fut = engine.SubmitProcedure(
        i % 2 == 0 ? "deg" : "two_hop",
        {PropertyValue(static_cast<int64_t>(i % 200))});
    ASSERT_TRUE(fut.ok());
    futures.push_back(std::move(fut).value());
  }
  for (auto& f : futures) {
    auto rows = f.get();
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows.value().size(), 1u);
  }
  EXPECT_EQ(engine.completed(), 500u);
}

TEST_F(RuntimeTest, HiActorPerTaskSnapshotOverride) {
  // A task pinned to a different graph must run against that graph.
  EdgeList tiny;
  tiny.num_vertices = 2;
  tiny.edges = {{0, 1, 1.0}};
  auto other_store = storage::VineyardStore::Build(
                         storage::MakeSimpleGraphData(tiny, false))
                         .value();
  std::shared_ptr<const grin::GrinGraph> other_graph =
      other_store->GetGrinHandle();

  HiActorEngine engine(graph_.get(), 2);
  QueryTask task;
  task.plan = std::make_shared<const ir::Plan>(
      Compile("MATCH (a:V) RETURN count(a)"));
  task.graph = other_graph;
  auto rows = engine.Execute(std::move(task));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(query::RowsToStrings(rows.value())[0], "2");
}

TEST_F(RuntimeTest, HiActorDrainsQueueOnShutdown) {
  std::vector<std::future<Result<std::vector<ir::Row>>>> futures;
  {
    HiActorEngine engine(graph_.get(), 1);
    auto plan = std::make_shared<const ir::Plan>(
        Compile("MATCH (a:V)-[:E]->(b:V) RETURN count(b)"));
    for (int i = 0; i < 50; ++i) {
      QueryTask task;
      task.plan = plan;
      futures.push_back(engine.Submit(std::move(task)));
    }
    // Engine destructor runs here with tasks possibly still queued.
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());  // No broken promises.
}

// ---------------------------------------------------------- Compatibility

TEST(CompatTest, NetworkXFacesAgreeWithRunners) {
  EdgeList g;
  g.num_vertices = 6;
  g.edges = {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {3, 4, 1}};
  auto pr = grape::networkx::pagerank(g, 0.85, 10);
  EXPECT_EQ(pr.size(), 6u);
  double total = 0.0;
  for (const auto& [v, rank] : pr) total += rank;
  EXPECT_NEAR(total, 1.0, 1e-6);

  auto depths = grape::networkx::single_source_shortest_path_length(g, 0);
  EXPECT_EQ(depths.at(2), 2u);
  EXPECT_EQ(depths.count(5), 0u);  // Unreachable omitted.

  auto components = grape::networkx::connected_components(g);
  EXPECT_EQ(components.size(), 3u);  // {0,1,2}, {3,4}, {5}.
}

TEST(CompatTest, GraphXPregelRunsGiraphStyleProgram) {
  // Max-label propagation written against the Giraph-compatible face.
  class MaxLabel : public grape::giraph::BasicComputation<uint32_t, uint32_t> {
   public:
    uint32_t Init(vid_t v, const grape::Fragment&) override { return v; }
    void Compute(grape::giraph::Vertex<uint32_t, uint32_t>& vertex,
                 std::span<const uint32_t> messages) override {
      uint32_t best = vertex.value();
      for (uint32_t m : messages) best = std::max(best, m);
      if (best > vertex.value() || vertex.superstep() == 0) {
        vertex.value() = best;
        vertex.SendToNeighbors(best);
      }
      vertex.VoteToHalt();
    }
  };
  EdgeList ring;
  ring.num_vertices = 8;
  for (vid_t v = 0; v < 8; ++v) ring.edges.push_back({v, (v + 1) % 8, 1.0});
  auto values = grape::graphx::Pregel<uint32_t, uint32_t>(
      ring, [] { return std::make_unique<MaxLabel>(); }, 50, 2);
  for (vid_t v = 0; v < 8; ++v) EXPECT_EQ(values[v], 7u);
}

}  // namespace
}  // namespace flex::runtime
