// Golden plan shapes for the fusion pass: every SNB interactive and BI
// query compiles (fusion on, the service default) to a pinned operator
// sequence, so a regression in FusePipelines — fusing where illegal,
// failing to fuse where legal, or reordering — fails loudly. Also covers
// the SplitPushdown conjunct analysis, the fused-projection fold, the
// EXPLAIN surface, and the flag/capability-aware plan-cache key.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/metric_names.h"
#include "common/metrics.h"
#include "ir/expr.h"
#include "query/plan_cache.h"
#include "query/service.h"
#include "snb/snb.h"
#include "storage/vineyard/vineyard_store.h"

namespace flex::query {
namespace {

/// Space-joined operator kind sequence, e.g. "FUSED_SCAN EXPAND GROUP".
std::string ShapeOf(const ir::Plan& plan) {
  std::string shape;
  for (const ir::Op& op : plan.ops) {
    if (!shape.empty()) shape += " ";
    shape += ir::OpKindName(op.kind);
  }
  return shape;
}

class PlanShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    snb::SnbConfig config;
    config.num_persons = 200;
    config.seed = 17;
    stats_ = new snb::SnbStats();
    auto data = snb::GenerateSnb(config, stats_);
    store_ = storage::VineyardStore::Build(data).value().release();
    graph_ = store_->GetGrinHandle().release();
    service_ = new QueryService(graph_, 1);
  }
  static void TearDownTestSuite() {
    delete service_;
    delete graph_;
    delete store_;
    delete stats_;
  }

  /// Asserts the fused compile of `spec` matches its golden shape and the
  /// structural legality invariants, and that a fusion-off compile has no
  /// fused operator at all.
  static void CheckShape(const snb::QuerySpec& spec,
                         const std::string& golden) {
    SCOPED_TRACE(spec.name);
    auto fused = service_->Compile(Language::kCypher, spec.cypher);
    ASSERT_TRUE(fused.ok()) << fused.status().ToString();
    const ir::Plan& plan = fused.value();
    EXPECT_EQ(ShapeOf(plan), golden);
    for (size_t i = 0; i < plan.ops.size(); ++i) {
      const ir::Op& op = plan.ops[i];
      if (op.kind == ir::OpKind::kFusedScan) {
        // A fused scan is always the leading op: FusePipelines never
        // fuses a cartesian re-scan.
        EXPECT_EQ(i, 0u);
      }
      if (op.kind != ir::OpKind::kFusedScan &&
          op.kind != ir::OpKind::kFusedExpand) {
        // Only fused ops may carry a folded projection.
        if (op.kind != ir::OpKind::kProject &&
            op.kind != ir::OpKind::kOrder && op.kind != ir::OpKind::kGroup &&
            op.kind != ir::OpKind::kSelect) {
          EXPECT_TRUE(op.exprs.empty());
        }
        continue;
      }
      // Fused ops require what the storage entry points require. A fused
      // scan always has a known label and >= 1 pushable conjunct; a fused
      // expand is fused either for pushdown (known label + predicate) or
      // for a folded projection (possibly both) — the filtered visit
      // degrades to unfiltered when there is nothing to push.
      EXPECT_EQ(op.id_lookup, nullptr);
      if (op.kind == ir::OpKind::kFusedScan) {
        EXPECT_NE(op.label, kInvalidLabel);
        ASSERT_NE(op.predicate, nullptr);
        const ir::PushdownSplit split = ir::SplitPushdown(
            *op.predicate, 0, op.label, graph_->schema(), nullptr);
        EXPECT_FALSE(split.pushed.empty());
      } else {
        EXPECT_TRUE((op.predicate != nullptr && op.label != kInvalidLabel) ||
                    !op.exprs.empty());
      }
    }
    // Fusion off: the very same text compiles to a plan with no fused op.
    auto parsed =
        ParseQuery(Language::kCypher, spec.cypher, graph_->schema());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    optimizer::OptimizerOptions no_fusion;
    no_fusion.fusion = false;
    const ir::Plan unfused =
        optimizer::Optimize(parsed.value(), &service_->catalog(), no_fusion,
                            &graph_->schema());
    EXPECT_EQ(unfused.ToString().find("FUSED_"), std::string::npos);
  }

  static void CheckAll(const std::vector<snb::QuerySpec>& specs,
                       const std::map<std::string, std::string>& golden) {
    for (const auto& spec : specs) {
      auto it = golden.find(spec.name);
      if (it == golden.end()) {
        auto compiled = service_->Compile(Language::kCypher, spec.cypher);
        ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
        ADD_FAILURE() << "missing golden shape:  {\"" << spec.name
                      << "\", \"" << ShapeOf(compiled.value()) << "\"},";
        continue;
      }
      CheckShape(spec, it->second);
    }
  }

  static snb::SnbStats* stats_;
  static storage::VineyardStore* store_;
  static grin::GrinGraph* graph_;
  static QueryService* service_;
};

snb::SnbStats* PlanShapeTest::stats_ = nullptr;
storage::VineyardStore* PlanShapeTest::store_ = nullptr;
grin::GrinGraph* PlanShapeTest::graph_ = nullptr;
QueryService* PlanShapeTest::service_ = nullptr;

// The golden shapes pin where fusion applies and — just as important —
// where it must not: id-pinned scans stay INDEX-style SCANs (id_lookup is
// the faster path), predicate-less scans stay unfused, a PROJECT folds
// into the expansion feeding it (but never across EXPAND_EDGE /
// GET_VERTEX / SELECT), and no op ever fuses across an ORDER / GROUP /
// DEDUP barrier (blocking ops appear unchanged downstream of fused ones).
TEST_F(PlanShapeTest, InteractiveComplexShapes) {
  CheckAll(snb::InteractiveComplexQueries(),
           {
               {"C1", "SCAN FUSED_EXPAND ORDER"},
               {"C2", "SCAN EXPAND FUSED_EXPAND ORDER"},
               {"C3", "SCAN EXPAND EXPAND GROUP ORDER"},
               {"C4", "SCAN EXPAND FUSED_EXPAND EXPAND GROUP ORDER"},
               {"C5", "SCAN EXPAND EXPAND_EDGE GET_VERTEX GROUP ORDER"},
               {"C6", "SCAN EXPAND EXPAND EXPAND EXPAND GROUP ORDER"},
               {"C7", "SCAN EXPAND EXPAND_EDGE GET_VERTEX PROJECT ORDER"},
               {"C8", "SCAN EXPAND EXPAND FUSED_EXPAND ORDER"},
               {"C9", "SCAN EXPAND EXPAND EXPAND SELECT PROJECT ORDER"},
               {"C10", "SCAN EXPAND EXPAND EXPAND EXPAND GROUP ORDER"},
               {"C11", "SCAN EXPAND FUSED_EXPAND ORDER"},
               {"C12", "SCAN EXPAND EXPAND EXPAND EXPAND GROUP ORDER"},
               {"C13", "SCAN EXPAND_VAR GROUP"},
               {"C14", "SCAN EXPAND EXPAND_EDGE GET_VERTEX GROUP ORDER"},
           });
}

TEST_F(PlanShapeTest, InteractiveShortShapes) {
  CheckAll(snb::InteractiveShortQueries(),
           {
               {"S1", "SCAN PROJECT"},
               {"S2", "SCAN FUSED_EXPAND ORDER"},
               {"S3", "SCAN EXPAND_EDGE GET_VERTEX PROJECT ORDER"},
               {"S4", "SCAN PROJECT"},
               {"S5", "SCAN FUSED_EXPAND"},
               {"S6", "SCAN FUSED_EXPAND"},
               {"S7", "SCAN EXPAND FUSED_EXPAND ORDER"},
           });
}

TEST_F(PlanShapeTest, BiShapes) {
  CheckAll(snb::BiQueries(),
           {
               {"BI1", "SCAN GROUP ORDER"},
               {"BI2", "SCAN EXPAND GROUP ORDER"},
               {"BI3", "SCAN EXPAND GROUP ORDER"},
               {"BI4", "SCAN EXPAND GROUP ORDER"},
               {"BI5", "SCAN EXPAND GROUP ORDER"},
               {"BI6", "SCAN EXPAND EXPAND GROUP ORDER"},
               {"BI7", "SCAN EXPAND GROUP ORDER"},
               {"BI8", "FUSED_SCAN GROUP ORDER"},
               {"BI9", "SCAN EXPAND GROUP ORDER"},
               {"BI10", "SCAN EXPAND GROUP ORDER"},
               {"BI11", "SCAN EXPAND GROUP ORDER"},
               {"BI12", "SCAN EXPAND GROUP ORDER"},
               {"BI13", "SCAN EXPAND GROUP ORDER"},
               {"BI14", "SCAN EXPAND EXPAND GROUP ORDER"},
               {"BI15", "SCAN EXPAND GROUP ORDER"},
               {"BI16", "SCAN EXPAND EXPAND GROUP ORDER"},
               {"BI17", "SCAN EXPAND EXPAND SELECT GROUP ORDER"},
               {"BI18", "SCAN GROUP ORDER"},
               {"BI19", "FUSED_SCAN GROUP ORDER"},
               {"BI20", "SCAN EXPAND EXPAND GROUP ORDER"},
           });
}

// A PROJECT reading only the scanned column folds into the fused scan and
// the folded plan agrees with the unfused one row-for-row in both modes.
TEST_F(PlanShapeTest, FusedScanFoldsProjection) {
  const std::string text =
      "MATCH (m:Post) WHERE m.length > 300 "
      "RETURN m.browserUsed, m.length";
  auto fused = service_->Compile(Language::kCypher, text);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  ASSERT_EQ(ShapeOf(fused.value()), "FUSED_SCAN");
  ASSERT_EQ(fused.value().ops[0].exprs.size(), 2u);

  auto parsed = ParseQuery(Language::kCypher, text, graph_->schema());
  ASSERT_TRUE(parsed.ok());
  optimizer::OptimizerOptions no_fusion;
  no_fusion.fusion = false;
  const ir::Plan unfused =
      optimizer::Optimize(parsed.value(), &service_->catalog(), no_fusion,
                          &graph_->schema());
  ASSERT_EQ(ShapeOf(unfused), "SCAN PROJECT");

  Interpreter interpreter(graph_);
  const ir::Plan& fused_plan = fused.value();
  std::vector<std::string> reference;
  for (const ir::Plan* plan : {&fused_plan, &unfused}) {
    for (bool vectorized : {false, true}) {
      ExecOptions opts;
      opts.vectorized = vectorized;
      auto rows = interpreter.Run(*plan, opts);
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
      auto rendered = RowsToStrings(rows.value());
      EXPECT_FALSE(rendered.empty());
      if (reference.empty()) {
        reference = std::move(rendered);
      } else {
        EXPECT_EQ(rendered, reference);
      }
    }
  }
}

// A PROJECT immediately downstream of an expansion folds into it — both
// when the expand also pushes a predicate and when there is no predicate
// at all (fused solely for the fold; the storage visit runs unfiltered) —
// and each folded plan agrees with its unfused form row-for-row in both
// modes.
TEST_F(PlanShapeTest, FusedExpandFoldsProjection) {
  const std::vector<std::string> texts = {
      "MATCH (f:Forum)-[:CONTAINER_OF]->(m:Post) WHERE m.length > 300 "
      "RETURN f.title, m.length",
      "MATCH (m:Post)<-[:CONTAINER_OF]-(f:Forum) RETURN f.title, m.length",
  };
  for (const std::string& text : texts) {
    SCOPED_TRACE(text);
    auto fused = service_->Compile(Language::kCypher, text);
    ASSERT_TRUE(fused.ok()) << fused.status().ToString();
    ASSERT_EQ(ShapeOf(fused.value()), "SCAN FUSED_EXPAND");
    ASSERT_EQ(fused.value().ops[1].exprs.size(), 2u);

    auto parsed = ParseQuery(Language::kCypher, text, graph_->schema());
    ASSERT_TRUE(parsed.ok());
    optimizer::OptimizerOptions no_fusion;
    no_fusion.fusion = false;
    const ir::Plan unfused = optimizer::Optimize(
        parsed.value(), &service_->catalog(), no_fusion, &graph_->schema());
    ASSERT_EQ(ShapeOf(unfused), "SCAN EXPAND PROJECT");

    Interpreter interpreter(graph_);
    const ir::Plan& fused_plan = fused.value();
    std::vector<std::string> reference;
    for (const ir::Plan* plan : {&fused_plan, &unfused}) {
      for (bool vectorized : {false, true}) {
        ExecOptions opts;
        opts.vectorized = vectorized;
        auto rows = interpreter.Run(*plan, opts);
        ASSERT_TRUE(rows.ok()) << rows.status().ToString();
        auto rendered = RowsToStrings(rows.value());
        EXPECT_FALSE(rendered.empty());
        if (reference.empty()) {
          reference = std::move(rendered);
        } else {
          EXPECT_EQ(rendered, reference);
        }
      }
    }
  }
}

TEST_F(PlanShapeTest, SplitPushdownConjuncts) {
  const GraphSchema& schema = graph_->schema();
  const label_t post = schema.FindVertexLabel("Post").value();
  const std::vector<PropertyValue> params = {PropertyValue("Chrome")};

  // length > 300 AND browserUsed == $0: both conjuncts push; the param
  // binds into the filter value.
  auto pred = ir::Expr::Binary(
      ir::BinOp::kAnd,
      ir::Expr::Binary(ir::BinOp::kGt, ir::Expr::Property(0, "length"),
                       ir::Expr::Const(PropertyValue(int64_t{300}))),
      ir::Expr::Binary(ir::BinOp::kEq, ir::Expr::Property(0, "browserUsed"),
                       ir::Expr::Param(0)));
  auto split = ir::SplitPushdown(*pred, 0, post, schema, &params);
  EXPECT_EQ(split.pushed.size(), 2u);
  EXPECT_TRUE(split.residual.empty());
  ASSERT_EQ(split.filter.conditions.size(), 2u);
  EXPECT_EQ(split.filter.conditions[0].cmp, grin::VertexCondition::Cmp::kGt);
  EXPECT_EQ(split.filter.conditions[1].value, PropertyValue("Chrome"));

  // Flipped operand order: 300 < length pushes as length > 300.
  auto flipped = ir::Expr::Binary(
      ir::BinOp::kLt, ir::Expr::Const(PropertyValue(int64_t{300})),
      ir::Expr::Property(0, "length"));
  split = ir::SplitPushdown(*flipped, 0, post, schema, &params);
  ASSERT_EQ(split.filter.conditions.size(), 1u);
  EXPECT_EQ(split.filter.conditions[0].cmp, grin::VertexCondition::Cmp::kGt);

  // Arithmetic, id(), and OR trees stay residual.
  auto residual_only = ir::Expr::Binary(
      ir::BinOp::kAnd,
      ir::Expr::Binary(
          ir::BinOp::kGt,
          ir::Expr::Binary(ir::BinOp::kAdd, ir::Expr::Property(0, "length"),
                           ir::Expr::Const(PropertyValue(int64_t{1}))),
          ir::Expr::Const(PropertyValue(int64_t{300}))),
      ir::Expr::Binary(
          ir::BinOp::kOr,
          ir::Expr::Binary(ir::BinOp::kEq, ir::Expr::Property(0, "length"),
                           ir::Expr::Const(PropertyValue(int64_t{1}))),
          ir::Expr::Binary(ir::BinOp::kEq, ir::Expr::Property(0, "length"),
                           ir::Expr::Const(PropertyValue(int64_t{2})))));
  split = ir::SplitPushdown(*residual_only, 0, post, schema, &params);
  EXPECT_TRUE(split.pushed.empty());
  EXPECT_EQ(split.residual.size(), 2u);

  // Out-of-range $i stays residual (execution must fail exactly as the
  // unfused expression would).
  auto bad_param =
      ir::Expr::Binary(ir::BinOp::kEq, ir::Expr::Property(0, "browserUsed"),
                       ir::Expr::Param(7));
  split = ir::SplitPushdown(*bad_param, 0, post, schema, &params);
  EXPECT_TRUE(split.pushed.empty());
  EXPECT_EQ(split.residual.size(), 1u);

  // Unresolvable property pushes as kNoColumn — the missing-property
  // empty value, mirroring Expr semantics.
  auto missing =
      ir::Expr::Binary(ir::BinOp::kEq, ir::Expr::Property(0, "nope"),
                       ir::Expr::Const(PropertyValue(int64_t{1})));
  split = ir::SplitPushdown(*missing, 0, post, schema, &params);
  ASSERT_EQ(split.filter.conditions.size(), 1u);
  EXPECT_EQ(split.filter.conditions[0].column,
            grin::VertexCondition::kNoColumn);

  // A predicate over some other column never pushes.
  auto other_col =
      ir::Expr::Binary(ir::BinOp::kGt, ir::Expr::Property(2, "length"),
                       ir::Expr::Const(PropertyValue(int64_t{300})));
  split = ir::SplitPushdown(*other_col, 0, post, schema, &params);
  EXPECT_TRUE(split.pushed.empty());

  // An unknown label disables pushdown entirely.
  split = ir::SplitPushdown(*pred, 0, kInvalidLabel, schema, &params);
  EXPECT_TRUE(split.pushed.empty());
  EXPECT_EQ(split.residual.size(), 2u);
}

TEST_F(PlanShapeTest, ExplainRendersFusionAndPushdown) {
  auto explain = service_->Explain(
      Language::kCypher,
      "MATCH (m:Post) WHERE m.length > 300 "
      "RETURN m.browserUsed, count(m) AS n ORDER BY n DESC");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain.value().find("FUSED_SCAN label=Post"),
            std::string::npos)
      << explain.value();
  EXPECT_NE(explain.value().find("pushed=[(_0.length > 300)]"),
            std::string::npos)
      << explain.value();

  // Unfusable query: EXPLAIN shows the plain plan, no fused markers.
  auto plain = service_->Explain(Language::kCypher,
                                 "MATCH (p:Person) RETURN p.firstName");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain.value().find("FUSED_"), std::string::npos)
      << plain.value();
}

TEST_F(PlanShapeTest, PlanCacheKeySegments) {
  optimizer::OptimizerOptions defaults;
  optimizer::OptimizerOptions no_fusion;
  no_fusion.fusion = false;
  const std::string text = "MATCH (p:Person) RETURN p";
  const std::string base =
      PlanCacheKey('c', text, defaults.FlagBits(), graph_->capabilities());
  // Same inputs, same key (the cache dedupes repeated templates).
  EXPECT_EQ(base, PlanCacheKey('c', text, defaults.FlagBits(),
                               graph_->capabilities()));
  EXPECT_NE(base.find(text), std::string::npos);
  // Any of language, optimizer flag set, or backend capability mask
  // changing must miss: all three determine the compiled plan.
  EXPECT_NE(base, PlanCacheKey('g', text, defaults.FlagBits(),
                               graph_->capabilities()));
  EXPECT_NE(base, PlanCacheKey('c', text, no_fusion.FlagBits(),
                               graph_->capabilities()));
  EXPECT_NE(base, PlanCacheKey('c', text, defaults.FlagBits(),
                               graph_->capabilities() ^
                                   grin::kPredicatePushdown));
}

}  // namespace
}  // namespace flex::query
