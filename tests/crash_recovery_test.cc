// Chaos crash-recovery suite: kill the writer at every stage of the
// commit pipeline (torn WAL append, lost fsync, mid-apply death) and
// assert the recovered store is bit-identical — SnapshotFingerprint and
// epoch — to an uninterrupted run that stops at the same durable batch.
// Both dynamic backends, schedules scripted from FLEX_CHAOS_SEED (the
// `tools/check.sh crash` mode loops seeds 1 7 23 101 under ASan+UBSan).

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/fault.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "storage/durable_store.h"
#include "storage/gart/gart_store.h"
#include "storage/livegraph/livegraph_store.h"
#include "storage/mutable_store.h"

namespace flex::storage {
namespace {

uint64_t ChaosSeed() {
  const char* s = std::getenv("FLEX_CHAOS_SEED");
  return (s != nullptr && s[0] != '\0') ? std::strtoull(s, nullptr, 10) : 1;
}

// --------------------------------------------------- scripted workloads

/// One staged mutation of a scripted batch.
struct Op {
  enum Kind { kVertex, kEdge, kUpdate, kRemove } kind;
  oid_t a = 0;
  oid_t b = 0;
  double weight = 1.0;
  int64_t ts = 0;
  std::string name;  // kVertex / kUpdate payload (GART only).
};

struct Script {
  std::vector<std::vector<Op>> batches;
};

/// Deterministic mixed workload honouring each backend's shape rules
/// (LiveGraph: dense oids, no properties; GART: sparse oids, updates).
Script MakeScript(uint64_t seed, bool gart, int num_batches) {
  Rng rng(seed * 1000003 + (gart ? 1 : 2));
  Script script;
  std::vector<oid_t> vertices;
  std::vector<std::pair<oid_t, oid_t>> edges;
  oid_t next_dense = 2;  // LiveGraph backends start with vertices {0, 1}.
  if (!gart) {
    vertices = {0, 1};
  }
  for (int b = 0; b < num_batches; ++b) {
    std::vector<Op>& ops = script.batches.emplace_back();
    const int new_vertices = 1 + static_cast<int>(rng.Uniform(2));
    for (int i = 0; i < new_vertices; ++i) {
      Op op;
      op.kind = Op::kVertex;
      op.a = gart ? static_cast<oid_t>(100 + vertices.size()) : next_dense++;
      if (gart) op.name = "v" + std::to_string(op.a);
      vertices.push_back(op.a);
      ops.push_back(op);
    }
    for (int i = 0; i < 2 && vertices.size() >= 2; ++i) {
      Op op;
      op.kind = Op::kEdge;
      op.a = vertices[rng.Uniform(vertices.size())];
      op.b = vertices[rng.Uniform(vertices.size())];
      op.weight = static_cast<double>(rng.Uniform(1000)) / 8.0;
      op.ts = static_cast<int64_t>(rng.Uniform(1 << 20));
      edges.emplace_back(op.a, op.b);
      ops.push_back(op);
    }
    if (gart && rng.Bernoulli(0.5) && !vertices.empty()) {
      Op op;
      op.kind = Op::kUpdate;
      op.a = vertices[rng.Uniform(vertices.size())];
      op.name = "u" + std::to_string(b);
      ops.push_back(op);
    }
    if (rng.Bernoulli(0.3) && !edges.empty()) {
      Op op;
      op.kind = Op::kRemove;
      const auto e = edges[rng.Uniform(edges.size())];
      op.a = e.first;
      op.b = e.second;
      ops.push_back(op);
      // RemoveEdge tombstones every live (a)->(b); drop them all so the
      // script never removes a pair twice (LiveGraph rejects a delete
      // that finds no live edge).
      std::erase(edges, e);
    }
  }
  return script;
}

Status StageOp(DurableStore* store, const Op& op, bool gart) {
  switch (op.kind) {
    case Op::kVertex:
      return store->AppendVertex(
          0, op.a,
          gart ? std::vector<PropertyValue>{PropertyValue(op.name)}
               : std::vector<PropertyValue>{});
    case Op::kEdge:
      return store->AppendEdge(0, op.a, op.b, op.weight, op.ts);
    case Op::kUpdate:
      return store->UpdateProperty(0, op.a, 0, PropertyValue(op.name));
    case Op::kRemove:
      return store->RemoveEdge(0, op.a, op.b);
  }
  return Status::Internal("bad op");
}

/// Applies one scripted batch straight to a backend — the uninterrupted
/// reference run the recovered store must match bit-for-bit.
void ApplyBatchDirect(MutableGraphStore* store, const std::vector<Op>& ops,
                      bool gart) {
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kVertex:
        ASSERT_TRUE(store
                        ->AppendVertex(
                            0, op.a,
                            gart ? std::vector<PropertyValue>{PropertyValue(
                                       op.name)}
                                 : std::vector<PropertyValue>{})
                        .ok());
        break;
      case Op::kEdge:
        ASSERT_TRUE(
            store->AppendEdge(0, op.a, op.b, op.weight, op.ts).ok());
        break;
      case Op::kUpdate:
        ASSERT_TRUE(
            store->UpdateProperty(0, op.a, 0, PropertyValue(op.name)).ok());
        break;
      case Op::kRemove:
        ASSERT_TRUE(store->RemoveEdge(0, op.a, op.b).ok());
        break;
    }
  }
  store->CommitBatch();
}

// ----------------------------------------------------- backend factories

GraphSchema GartSchema() {
  GraphSchema schema;
  EXPECT_TRUE(
      schema.AddVertexLabel("V", {{"name", PropertyType::kString}}).ok());
  EXPECT_TRUE(schema
                  .AddEdgeLabel("E", 0, 0,
                                {{"weight", PropertyType::kDouble},
                                 {"ts", PropertyType::kInt64}})
                  .ok());
  return schema;
}

/// Fresh backend in the WAL's base state — every open of a WAL must start
/// from the same base state, per the DurableStore::Open contract.
std::shared_ptr<MutableGraphStore> FreshBackend(bool gart) {
  if (gart) {
    auto store = GartStore::Create(GartSchema());
    EXPECT_TRUE(store.ok());
    return std::shared_ptr<MutableGraphStore>(std::move(store).value());
  }
  return std::make_shared<LiveGraphStore>(2);
}

// ----------------------------------------------------------- the harness

class CrashRecoveryTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { fault::Injector::Instance().DisarmAll(); }
  void TearDown() override {
    fault::Injector::Instance().DisarmAll();
    for (const std::string& p : paths_) {
      std::error_code ec;
      std::filesystem::remove(p, ec);
    }
  }

  std::string TempWalPath() {
    static std::atomic<int> counter{0};
    std::string p = "flex_crash_test_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter++) + ".wal";
    paths_.push_back(p);
    return p;
  }

  std::vector<std::string> paths_;
};

/// Kills the writer at fault site `site` (armed to fire on its `nth` hit),
/// recovers, and asserts bit-identity with an uninterrupted run truncated
/// to the durable prefix. `apply_site` marks the post-durability site: a
/// crash there keeps the in-flight batch.
void RunCrashAndRecover(bool gart, const std::string& site, uint64_t nth,
                        bool apply_site, const std::string& wal) {
  SCOPED_TRACE(site + " nth=" + std::to_string(nth) +
               (gart ? " [gart]" : " [livegraph]"));
  const Script script = MakeScript(ChaosSeed(), gart, /*num_batches=*/12);

  // --- the interrupted run -------------------------------------------
  int committed = 0;
  bool crashed = false;
  {
    auto ds = DurableStore::Open(FreshBackend(gart), wal);
    ASSERT_TRUE(ds.ok()) << ds.status().message();
    fault::Policy policy;  // kFail on hit window [nth, nth+1).
    policy.nth = nth;
    fault::Injector::Instance().Arm(site, policy);
    for (const auto& batch : script.batches) {
      bool staged_ok = true;
      for (const Op& op : batch) {
        if (!StageOp(ds.value().get(), op, gart).ok()) {
          staged_ok = false;
          break;
        }
      }
      if (!staged_ok || !ds.value()->CommitBatch().ok()) {
        crashed = true;  // The "process" dies here; the store is dropped.
        EXPECT_TRUE(ds.value()->failed());
        break;
      }
      ++committed;
    }
    fault::Injector::Instance().DisarmAll();
  }
  ASSERT_TRUE(crashed) << "fault never fired; nth too large for the script";

  // Durable prefix: a post-durability (apply) crash keeps the in-flight
  // batch; a WAL-stage crash loses it.
  const int durable = committed + (apply_site ? 1 : 0);

  // --- recovery -------------------------------------------------------
  auto recovered = DurableStore::Open(FreshBackend(gart), wal);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(recovered.value()->read_version(),
            static_cast<version_t>(durable));
  EXPECT_EQ(recovered.value()->recovery_stats().committed_batches,
            static_cast<uint64_t>(durable));

  // --- the uninterrupted reference ------------------------------------
  auto reference = FreshBackend(gart);
  for (int b = 0; b < durable; ++b) {
    ApplyBatchDirect(reference.get(), script.batches[b], gart);
  }
  EXPECT_EQ(SnapshotFingerprint(*recovered.value()->PinSnapshot()),
            SnapshotFingerprint(*reference->PinSnapshot()));

  // --- life after recovery: finish the script, reopen once more -------
  for (size_t b = static_cast<size_t>(durable); b < script.batches.size();
       ++b) {
    for (const Op& op : script.batches[b]) {
      ASSERT_TRUE(StageOp(recovered.value().get(), op, gart).ok());
    }
    auto epoch = recovered.value()->CommitBatch();
    ASSERT_TRUE(epoch.ok()) << "batch " << b << ": "
                            << epoch.status().message();
  }
  for (size_t b = static_cast<size_t>(durable); b < script.batches.size();
       ++b) {
    ApplyBatchDirect(reference.get(), script.batches[b], gart);
  }
  const uint32_t final_fp =
      SnapshotFingerprint(*recovered.value()->PinSnapshot());
  EXPECT_EQ(final_fp, SnapshotFingerprint(*reference->PinSnapshot()));

  auto reopened = DurableStore::Open(FreshBackend(gart), wal);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(SnapshotFingerprint(*reopened.value()->PinSnapshot()), final_fp);
  EXPECT_EQ(reopened.value()->read_version(), reference->read_version());
}

TEST_P(CrashRecoveryTest, TornAppendLosesOnlyInFlightBatch) {
  // One Append() per commit, so the nth hit is the nth batch.
  const uint64_t nth = 1 + ChaosSeed() % 5;
  RunCrashAndRecover(GetParam(), "wal.append", nth,
                     /*apply_site=*/false, TempWalPath());
}

TEST_P(CrashRecoveryTest, LostSyncLosesOnlyInFlightBatch) {
  const uint64_t nth = 1 + (ChaosSeed() / 3) % 5;
  RunCrashAndRecover(GetParam(), "wal.sync", nth,
                     /*apply_site=*/false, TempWalPath());
}

TEST_P(CrashRecoveryTest, ApplyCrashKeepsDurableBatch) {
  // storage.apply hits once per record; land the kill mid-batch.
  const uint64_t nth = 1 + ChaosSeed() % 12;
  RunCrashAndRecover(GetParam(), "storage.apply", nth,
                     /*apply_site=*/true, TempWalPath());
}

TEST_P(CrashRecoveryTest, BackToBackCrashesStayConsistent) {
  // Crash, recover, crash again at a later point, recover again — the
  // second recovery must still match an uninterrupted reference.
  const bool gart = GetParam();
  const std::string wal = TempWalPath();
  const Script script = MakeScript(ChaosSeed() + 77, gart, 10);

  int committed = 0;
  for (int round = 0; round < 2; ++round) {
    auto ds = DurableStore::Open(FreshBackend(gart), wal);
    ASSERT_TRUE(ds.ok()) << ds.status().message();
    ASSERT_EQ(ds.value()->read_version(),
              static_cast<version_t>(committed));
    fault::Policy policy;
    policy.nth = 2 + static_cast<uint64_t>(round);
    fault::Injector::Instance().Arm("wal.append", policy);
    for (size_t b = static_cast<size_t>(committed);
         b < script.batches.size(); ++b) {
      for (const Op& op : script.batches[b]) {
        ASSERT_TRUE(StageOp(ds.value().get(), op, gart).ok());
      }
      if (!ds.value()->CommitBatch().ok()) break;
      ++committed;
    }
    fault::Injector::Instance().DisarmAll();
  }

  auto recovered = DurableStore::Open(FreshBackend(gart), wal);
  ASSERT_TRUE(recovered.ok());
  auto reference = FreshBackend(gart);
  for (int b = 0; b < committed; ++b) {
    ApplyBatchDirect(reference.get(), script.batches[b], gart);
  }
  EXPECT_EQ(SnapshotFingerprint(*recovered.value()->PinSnapshot()),
            SnapshotFingerprint(*reference->PinSnapshot()));
}

INSTANTIATE_TEST_SUITE_P(Backends, CrashRecoveryTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Gart" : "LiveGraph";
                         });

}  // namespace
}  // namespace flex::storage
