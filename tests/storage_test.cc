#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "common/random.h"
#include "datagen/generators.h"
#include "storage/gart/gart_store.h"
#include "storage/graphar/csv.h"
#include "storage/graphar/encoding.h"
#include "storage/graphar/graphar.h"
#include "storage/livegraph/livegraph_store.h"
#include "storage/simple.h"
#include "storage/vineyard/vineyard_store.h"

namespace flex::storage {
namespace {

/// Builds the e-commerce toy graph from Figure 2 of the paper:
/// Buyers {1, 2} and Items {3, 4}; 1-KNOWS->2, buyers BUY items.
PropertyGraphData EcommerceData() {
  PropertyGraphData data;
  label_t buyer =
      data.schema
          .AddVertexLabel("Buyer", {{"username", PropertyType::kString},
                                    {"credits", PropertyType::kInt64}})
          .value();
  label_t item =
      data.schema.AddVertexLabel("Item", {{"price", PropertyType::kDouble}})
          .value();
  label_t knows = data.schema.AddEdgeLabel("KNOWS", buyer, buyer, {}).value();
  label_t buy = data.schema
                    .AddEdgeLabel("BUY", buyer, item,
                                  {{"date", PropertyType::kInt64}})
                    .value();

  data.AddVertex(buyer, 1, {PropertyValue("A1"), PropertyValue(int64_t{10})});
  data.AddVertex(buyer, 2, {PropertyValue("B2"), PropertyValue(int64_t{20})});
  data.AddVertex(item, 3, {PropertyValue(9.5)});
  data.AddVertex(item, 4, {PropertyValue(3.25)});
  data.AddEdge(knows, 1, 2, {});
  data.AddEdge(buy, 1, 3, {PropertyValue(int64_t{100})});
  data.AddEdge(buy, 2, 3, {PropertyValue(int64_t{103})});
  data.AddEdge(buy, 2, 4, {PropertyValue(int64_t{105})});
  return data;
}

std::vector<oid_t> CollectNeighborOids(const grin::GrinGraph& g, vid_t v,
                                       Direction dir, label_t elabel) {
  std::vector<oid_t> out;
  grin::ForEachAdj(g, v, dir, elabel, [&](vid_t nbr, double, eid_t) {
    out.push_back(g.GetOid(nbr));
    return true;
  });
  std::sort(out.begin(), out.end());
  return out;
}

// ------------------------------------------------------------- Vineyard

TEST(VineyardTest, BuildsAndIndexes) {
  auto store = VineyardStore::Build(EcommerceData()).value();
  EXPECT_EQ(store->num_vertices(), 4u);
  EXPECT_EQ(store->num_edges(), 4u);
  const label_t buyer = store->schema().FindVertexLabel("Buyer").value();
  const label_t item = store->schema().FindVertexLabel("Item").value();
  auto [b0, b1] = store->VertexRange(buyer);
  EXPECT_EQ(b1 - b0, 2u);
  EXPECT_EQ(store->VertexLabelOf(b0), buyer);
  const vid_t v1 = store->FindVertex(buyer, 1).value();
  EXPECT_EQ(store->GetOid(v1), 1);
  EXPECT_FALSE(store->FindVertex(item, 1).ok());
}

TEST(VineyardTest, ForwardAndReverseAdjacencyAgree) {
  auto store = VineyardStore::Build(EcommerceData()).value();
  const auto& schema = store->schema();
  const label_t buyer = schema.FindVertexLabel("Buyer").value();
  const label_t item = schema.FindVertexLabel("Item").value();
  const label_t buy = schema.FindEdgeLabel("BUY").value();
  const vid_t v2 = store->FindVertex(buyer, 2).value();
  const vid_t v3 = store->FindVertex(item, 3).value();

  auto out = store->OutNeighbors(v2, buy);
  ASSERT_EQ(out.size(), 2u);
  auto in = store->InNeighbors(v3, buy);
  ASSERT_EQ(in.size(), 2u);

  // Edge properties resolve identically from both directions.
  auto in_eids = store->InEdgeIds(v3, buy);
  std::multiset<int64_t> dates;
  for (eid_t e : in_eids) {
    dates.insert(store->edge_table(buy).Get(e, 0).AsInt64());
  }
  EXPECT_EQ(dates, (std::multiset<int64_t>{100, 103}));
}

TEST(VineyardTest, PropertyColumns) {
  auto store = VineyardStore::Build(EcommerceData()).value();
  const label_t buyer = store->schema().FindVertexLabel("Buyer").value();
  const auto& table = store->vertex_table(buyer);
  EXPECT_EQ(table.Get(0, 0).AsString(), "A1");
  EXPECT_EQ(table.Get(1, 1).AsInt64(), 20);
}

TEST(VineyardTest, RejectsDuplicateOids) {
  PropertyGraphData data;
  label_t v = data.schema.AddVertexLabel("V", {}).value();
  data.AddVertex(v, 7, {});
  data.AddVertex(v, 7, {});
  EXPECT_EQ(VineyardStore::Build(data).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(VineyardTest, RejectsDanglingEdges) {
  PropertyGraphData data;
  label_t v = data.schema.AddVertexLabel("V", {}).value();
  label_t e = data.schema.AddEdgeLabel("E", v, v, {}).value();
  data.AddVertex(v, 1, {});
  data.AddEdge(e, 1, 99, {});
  EXPECT_EQ(VineyardStore::Build(data).status().code(), StatusCode::kNotFound);
}

TEST(VineyardGrinTest, CapabilitiesAndTraversal) {
  auto store = VineyardStore::Build(EcommerceData()).value();
  auto g = store->GetGrinHandle();
  EXPECT_EQ(g->backend_name(), "vineyard");
  EXPECT_TRUE(g->RequireTraits(grin::kVertexListArray |
                               grin::kAdjacentListArray |
                               grin::kPropertyColumnArray)
                  .ok());
  const label_t buyer = g->schema().FindVertexLabel("Buyer").value();
  const label_t buy = g->schema().FindEdgeLabel("BUY").value();
  const vid_t v2 = g->FindVertex(buyer, 2).value();
  EXPECT_EQ(CollectNeighborOids(*g, v2, Direction::kOut, buy),
            (std::vector<oid_t>{3, 4}));
  EXPECT_EQ(g->Degree(v2, Direction::kOut, buy), 2u);
  EXPECT_EQ(g->GetVertexProperty(v2, 0).AsString(), "B2");
}

TEST(VineyardGrinTest, EdgePropertiesThroughBothDirections) {
  auto store = VineyardStore::Build(EcommerceData()).value();
  auto g = store->GetGrinHandle();
  const label_t item = g->schema().FindVertexLabel("Item").value();
  const label_t buy = g->schema().FindEdgeLabel("BUY").value();
  const vid_t v3 = g->FindVertex(item, 3).value();
  std::multiset<int64_t> dates;
  grin::ForEachAdj(*g, v3, Direction::kIn, buy,
                   [&](vid_t, double, eid_t e) {
                     dates.insert(g->GetEdgeProperty(buy, e, 0).AsInt64());
                     return true;
                   });
  EXPECT_EQ(dates, (std::multiset<int64_t>{100, 103}));
}

TEST(VineyardGrinTest, Int64ColumnSpan) {
  auto store = VineyardStore::Build(EcommerceData()).value();
  auto g = store->GetGrinHandle();
  const label_t buyer = g->schema().FindVertexLabel("Buyer").value();
  auto credits = g->VertexInt64Column(buyer, 1);
  ASSERT_EQ(credits.size(), 2u);
  EXPECT_EQ(credits[0] + credits[1], 30);
  // Wrong-typed column yields an empty span, not garbage.
  EXPECT_TRUE(g->VertexInt64Column(buyer, 0).empty());
}

// ----------------------------------------------------------------- GART

TEST(GartTest, RejectsUnsupportedEdgeSchema) {
  GraphSchema schema;
  label_t v = schema.AddVertexLabel("V", {}).value();
  ASSERT_TRUE(
      schema.AddEdgeLabel("E", v, v, {{"name", PropertyType::kString}}).ok());
  EXPECT_EQ(GartStore::Create(schema).status().code(),
            StatusCode::kUnimplemented);
}

TEST(GartTest, MvccVisibility) {
  GraphSchema schema;
  label_t v = schema.AddVertexLabel("V", {}).value();
  label_t e = schema.AddEdgeLabel("E", v, v, {}).value();
  auto store = GartStore::Create(schema).value();
  ASSERT_TRUE(store->AddVertex(v, 1, {}).ok());
  ASSERT_TRUE(store->AddVertex(v, 2, {}).ok());
  ASSERT_TRUE(store->AddEdge(e, 1, 2).ok());

  // Uncommitted writes are invisible.
  auto snap0 = store->GetSnapshot();
  EXPECT_FALSE(snap0->FindVertex(v, 1).ok());
  EXPECT_EQ(store->CountEdges(e), 0u);

  const version_t v1 = store->CommitVersion();
  auto snap1 = store->GetSnapshot();
  EXPECT_EQ(snap1->SnapshotVersion(), v1);
  EXPECT_TRUE(snap1->FindVertex(v, 1).ok());
  EXPECT_EQ(store->CountEdges(e), 1u);

  // Old snapshot still sees the old state.
  EXPECT_FALSE(snap0->FindVertex(v, 1).ok());
}

TEST(GartTest, DeleteTombstonesRespectVersions) {
  GraphSchema schema;
  label_t v = schema.AddVertexLabel("V", {}).value();
  label_t e = schema.AddEdgeLabel("E", v, v, {}).value();
  auto store = GartStore::Create(schema).value();
  ASSERT_TRUE(store->AddVertex(v, 1, {}).ok());
  ASSERT_TRUE(store->AddVertex(v, 2, {}).ok());
  ASSERT_TRUE(store->AddEdge(e, 1, 2).ok());
  const version_t v1 = store->CommitVersion();

  ASSERT_TRUE(store->DeleteEdge(e, 1, 2).ok());
  const version_t v2 = store->CommitVersion();

  auto snap1 = store->GetSnapshot(v1);
  auto snap2 = store->GetSnapshot(v2);
  const vid_t vid1 = snap1->FindVertex(v, 1).value();
  EXPECT_EQ(snap1->Degree(vid1, Direction::kOut, e), 1u);
  EXPECT_EQ(snap2->Degree(vid1, Direction::kOut, e), 0u);

  // Re-adding after delete resurrects the edge at a later version.
  ASSERT_TRUE(store->AddEdge(e, 1, 2).ok());
  const version_t v3 = store->CommitVersion();
  auto snap3 = store->GetSnapshot(v3);
  EXPECT_EQ(snap3->Degree(vid1, Direction::kOut, e), 1u);
  EXPECT_EQ(snap2->Degree(vid1, Direction::kOut, e), 0u);
}

TEST(GartTest, SealPreservesLiveEdgesAndDropsTombstones) {
  GraphSchema schema;
  label_t v = schema.AddVertexLabel("V", {}).value();
  label_t e = schema.AddEdgeLabel("E", v, v, {}).value();
  auto store = GartStore::Create(schema).value();
  for (oid_t i = 0; i < 10; ++i) ASSERT_TRUE(store->AddVertex(v, i, {}).ok());
  for (oid_t i = 0; i < 9; ++i) ASSERT_TRUE(store->AddEdge(e, i, i + 1).ok());
  store->CommitVersion();
  ASSERT_TRUE(store->DeleteEdge(e, 0, 1).ok());
  store->CommitVersion();
  EXPECT_EQ(store->CountEdges(e), 8u);
  store->Seal();
  EXPECT_EQ(store->CountEdges(e), 8u);
  // Sealed store keeps serving reads and accepting new writes.
  ASSERT_TRUE(store->AddEdge(e, 0, 5).ok());
  store->CommitVersion();
  EXPECT_EQ(store->CountEdges(e), 9u);
}

TEST(GartTest, InlineEdgeProperties) {
  GraphSchema schema;
  label_t a = schema.AddVertexLabel("Account", {}).value();
  label_t i = schema.AddVertexLabel("Item", {}).value();
  label_t buy = schema
                    .AddEdgeLabel("BUY", a, i,
                                  {{"amount", PropertyType::kDouble},
                                   {"date", PropertyType::kInt64}})
                    .value();
  auto store = GartStore::Create(schema).value();
  ASSERT_TRUE(store->AddVertex(a, 1, {}).ok());
  ASSERT_TRUE(store->AddVertex(i, 2, {}).ok());
  ASSERT_TRUE(store->AddEdge(buy, 1, 2, 19.99, 42).ok());
  store->CommitVersion();
  auto snap = store->GetSnapshot();
  const vid_t v1 = snap->FindVertex(a, 1).value();
  bool seen = false;
  grin::ForEachAdj(*snap, v1, Direction::kOut, buy,
                   [&](vid_t, double w, eid_t e) {
                     seen = true;
                     EXPECT_DOUBLE_EQ(w, 19.99);
                     EXPECT_DOUBLE_EQ(
                         snap->GetEdgeProperty(buy, e, 0).AsDouble(), 19.99);
                     EXPECT_EQ(snap->GetEdgeProperty(buy, e, 1).AsInt64(), 42);
                     return true;
                   });
  EXPECT_TRUE(seen);
}

TEST(GartTest, BulkBuildMatchesVineyardTopology) {
  EdgeList list = datagen::GenerateUniform(200, 2000, 99);
  PropertyGraphData data = MakeSimpleGraphData(list);
  auto gart = GartStore::Build(data).value();
  auto vineyard = VineyardStore::Build(data).value();
  auto gsnap = gart->GetSnapshot();
  auto vgrin = vineyard->GetGrinHandle();
  const label_t e = 0;
  for (oid_t oid = 0; oid < 200; oid += 17) {
    const vid_t gv = gsnap->FindVertex(0, oid).value();
    const vid_t vv = vgrin->FindVertex(0, oid).value();
    EXPECT_EQ(CollectNeighborOids(*gsnap, gv, Direction::kOut, e),
              CollectNeighborOids(*vgrin, vv, Direction::kOut, e))
        << "vertex " << oid;
    EXPECT_EQ(CollectNeighborOids(*gsnap, gv, Direction::kIn, e),
              CollectNeighborOids(*vgrin, vv, Direction::kIn, e));
  }
}

TEST(GartTest, ConcurrentReadersAndWriters) {
  GraphSchema schema;
  label_t v = schema.AddVertexLabel("V", {}).value();
  label_t e = schema.AddEdgeLabel("E", v, v, {}).value();
  auto store = GartStore::Create(schema).value();
  constexpr oid_t kVerts = 64;
  for (oid_t i = 0; i < kVerts; ++i) {
    ASSERT_TRUE(store->AddVertex(v, i, {}).ok());
  }
  store->CommitVersion();

  std::atomic<bool> stop{false};
  std::atomic<size_t> read_errors{0};
  std::thread writer([&] {
    Rng rng(5);
    for (int k = 0; k < 5000; ++k) {
      const oid_t s = static_cast<oid_t>(rng.Uniform(kVerts));
      const oid_t d = static_cast<oid_t>(rng.Uniform(kVerts));
      if (!store->AddEdge(e, s, d).ok()) ++read_errors;
      if (k % 64 == 0) store->CommitVersion();
    }
    store->CommitVersion();
    stop = true;
  });
  std::thread reader([&] {
    while (!stop.load()) {
      auto snap = store->GetSnapshot();
      size_t count = 0;
      for (oid_t i = 0; i < kVerts; ++i) {
        const auto res = snap->FindVertex(v, i);
        if (!res.ok()) {
          ++read_errors;
          continue;
        }
        count += snap->Degree(res.value(), Direction::kOut, e);
      }
      (void)count;
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_EQ(store->CountEdges(e), 5000u);
}

class GartDeltaBoundary : public ::testing::TestWithParam<size_t> {};

TEST_P(GartDeltaBoundary, ScansAcrossDeltaBlockBoundaries) {
  // Delta blocks hold 16 records; degrees straddling multiples of 16 must
  // scan correctly sealed and unsealed.
  const size_t degree = GetParam();
  GraphSchema schema;
  label_t v = schema.AddVertexLabel("V", {}).value();
  label_t e = schema.AddEdgeLabel("E", v, v, {}).value();
  auto store = storage::GartStore::Create(schema).value();
  ASSERT_TRUE(store->AddVertex(v, 0, {}).ok());
  for (size_t i = 0; i < degree; ++i) {
    ASSERT_TRUE(store->AddVertex(v, static_cast<oid_t>(i + 1), {}).ok());
    ASSERT_TRUE(store->AddEdge(e, 0, static_cast<oid_t>(i + 1)).ok());
  }
  store->CommitVersion();

  auto count_from_source = [&](const grin::GrinGraph& g) {
    size_t n = 0;
    const vid_t src = g.FindVertex(v, 0).value();
    grin::ForEachAdj(g, src, Direction::kOut, e,
                     [&](vid_t, double, eid_t) { ++n; return true; });
    return n;
  };
  auto unsealed = store->GetSnapshot();
  EXPECT_EQ(count_from_source(*unsealed), degree);
  EXPECT_EQ(unsealed->Degree(unsealed->FindVertex(v, 0).value(),
                             Direction::kOut, e),
            degree);
  store->Seal();
  auto sealed = store->GetSnapshot();
  EXPECT_EQ(count_from_source(*sealed), degree);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, GartDeltaBoundary,
                         ::testing::Values(1, 15, 16, 17, 31, 32, 33, 100));

TEST(GartTest, EarlyStopInChunkedScan) {
  EdgeList list = datagen::GenerateUniform(50, 1000, 3);
  auto gart = storage::GartStore::Build(MakeSimpleGraphData(list)).value();
  auto snap = gart->GetSnapshot();
  size_t seen = 0;
  grin::ForEachAdj(*snap, 0, Direction::kOut, 0,
                   [&](vid_t, double, eid_t) { return ++seen < 3; });
  EXPECT_LE(seen, 3u);
}

// ------------------------------------------------------------ LiveGraph

TEST(LiveGraphTest, VersionedAddDelete) {
  LiveGraphStore store(4);
  ASSERT_TRUE(store.AddEdge(0, 1).ok());
  ASSERT_TRUE(store.AddEdge(0, 2).ok());
  const version_t v1 = store.CommitVersion();
  ASSERT_TRUE(store.DeleteEdge(0, 1).ok());
  const version_t v2 = store.CommitVersion();
  EXPECT_EQ(store.CountEdges(v1), 2u);
  EXPECT_EQ(store.CountEdges(v2), 1u);
  EXPECT_FALSE(store.DeleteEdge(0, 3).ok());
  EXPECT_FALSE(store.AddEdge(9, 0).ok());
}

TEST(LiveGraphTest, GrinSnapshotScan) {
  EdgeList list = datagen::GenerateUniform(100, 600, 4);
  auto store = LiveGraphStore::Build(list);
  auto g = store->GetSnapshot();
  size_t total = 0;
  for (vid_t v = 0; v < 100; ++v) {
    grin::ForEachAdj(*g, v, Direction::kOut, 0,
                     [&](vid_t, double, eid_t) { ++total; return true; });
  }
  EXPECT_EQ(total, 600u);
}

TEST(LiveGraphTest, MatchesGartLiveSet) {
  // Same random add/delete trace applied to both dynamic stores ends in the
  // same live edge set.
  GraphSchema schema;
  label_t v = schema.AddVertexLabel("V", {}).value();
  label_t e = schema.AddEdgeLabel("E", v, v, {}).value();
  auto gart = GartStore::Create(schema).value();
  LiveGraphStore live(50);
  for (oid_t i = 0; i < 50; ++i) ASSERT_TRUE(gart->AddVertex(v, i, {}).ok());
  Rng rng(17);
  std::set<std::pair<vid_t, vid_t>> reference;
  for (int k = 0; k < 800; ++k) {
    const vid_t s = static_cast<vid_t>(rng.Uniform(50));
    const vid_t d = static_cast<vid_t>(rng.Uniform(50));
    if (rng.Bernoulli(0.7) || !reference.count({s, d})) {
      if (!reference.count({s, d})) {
        ASSERT_TRUE(gart->AddEdge(e, s, d).ok());
        ASSERT_TRUE(live.AddEdge(s, d).ok());
        reference.insert({s, d});
      }
    } else {
      ASSERT_TRUE(gart->DeleteEdge(e, s, d).ok());
      ASSERT_TRUE(live.DeleteEdge(s, d).ok());
      reference.erase({s, d});
    }
  }
  gart->CommitVersion();
  live.CommitVersion();
  EXPECT_EQ(gart->CountEdges(e), reference.size());
  EXPECT_EQ(live.CountEdges(live.read_version()), reference.size());

  auto snap = gart->GetSnapshot();
  for (vid_t s = 0; s < 50; ++s) {
    std::set<vid_t> gart_nbrs;
    const vid_t gs = snap->FindVertex(v, s).value();
    grin::ForEachAdj(*snap, gs, Direction::kOut, e,
                     [&](vid_t n, double, eid_t) {
                       gart_nbrs.insert(static_cast<vid_t>(snap->GetOid(n)));
                       return true;
                     });
    std::set<vid_t> live_nbrs;
    live.ForEachOut(s, live.read_version(),
                    [&](vid_t n, double) { live_nbrs.insert(n); });
    EXPECT_EQ(gart_nbrs, live_nbrs) << "vertex " << s;
  }
}

// -------------------------------------------------------------- Encoding

TEST(EncodingTest, Int64DeltaRoundTrip) {
  std::vector<int64_t> values = {5, 6, 7, 100, -3, -3, 1000000, 0};
  std::vector<uint8_t> buf;
  graphar::EncodeInt64Chunk(values, &buf);
  std::vector<int64_t> out;
  ASSERT_TRUE(graphar::DecodeInt64Chunk(buf, values.size(), &out).ok());
  EXPECT_EQ(out, values);
}

TEST(EncodingTest, SortedIdsCompressWell) {
  std::vector<int64_t> ids(10000);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int64_t>(i * 3);
  std::vector<uint8_t> buf;
  graphar::EncodeInt64Chunk(ids, &buf);
  // A constant-delta column is one RLE run: a handful of bytes total.
  EXPECT_LE(buf.size(), 16u);
  std::vector<int64_t> out;
  ASSERT_TRUE(graphar::DecodeInt64Chunk(buf, ids.size(), &out).ok());
  EXPECT_EQ(out, ids);
}

TEST(EncodingTest, RleRejectsCorruptRuns) {
  std::vector<int64_t> ids(100, 7);  // All-equal: RLE chosen.
  std::vector<uint8_t> buf;
  graphar::EncodeInt64Chunk(ids, &buf);
  std::vector<int64_t> out;
  // Claiming more rows than encoded must fail cleanly.
  EXPECT_FALSE(graphar::DecodeInt64Chunk(buf, 101, &out).ok());
}

TEST(EncodingTest, StringAndBoolRoundTrip) {
  std::vector<std::string> strs = {"", "a", "hello world", std::string(300, 'x')};
  std::vector<uint8_t> buf;
  graphar::EncodeStringChunk(strs, 0, strs.size(), &buf);
  std::vector<std::string> sout;
  ASSERT_TRUE(graphar::DecodeStringChunk(buf, strs.size(), &sout).ok());
  EXPECT_EQ(sout, strs);

  std::vector<uint8_t> bits = {1, 0, 0, 1, 1, 1, 0, 1, 1};
  buf.clear();
  graphar::EncodeBoolChunk(bits, &buf);
  EXPECT_EQ(buf.size(), 2u);  // 9 bools -> 2 bytes.
  std::vector<uint8_t> bout;
  ASSERT_TRUE(graphar::DecodeBoolChunk(buf, bits.size(), &bout).ok());
  EXPECT_EQ(bout, bits);
}

TEST(EncodingTest, TruncatedChunksFailCleanly) {
  std::vector<int64_t> values = {1, 20, 300, -5, 17};  // Irregular: plain.
  std::vector<uint8_t> buf;
  graphar::EncodeInt64Chunk(values, &buf);
  std::vector<int64_t> out;
  EXPECT_FALSE(graphar::DecodeInt64Chunk({buf.data(), buf.size() - 1},
                                         values.size(), &out)
                   .ok());
  std::vector<double> dout;
  EXPECT_FALSE(graphar::DecodeDoubleChunk({buf.data(), 4}, 3, &dout).ok());
}

// -------------------------------------------------------------- GraphAr

class GraphArRoundTrip : public ::testing::TestWithParam<size_t> {
 protected:
  std::string Path() const {
    return testing::TempDir() + "graphar_rt_" +
           std::to_string(GetParam()) + ".gar";
  }
};

TEST_P(GraphArRoundTrip, PreservesGraphData) {
  PropertyGraphData data = EcommerceData();
  ASSERT_TRUE(graphar::WriteGraphAr(Path(), data, GetParam()).ok());
  auto reader = graphar::GraphArReader::Open(Path()).value();
  PropertyGraphData loaded = reader->ReadAll().value();

  ASSERT_EQ(loaded.schema.vertex_label_num(), 2u);
  ASSERT_EQ(loaded.schema.edge_label_num(), 2u);
  EXPECT_EQ(loaded.total_vertices(), data.total_vertices());
  EXPECT_EQ(loaded.total_edges(), data.total_edges());
  // The loaded archive must build a store identical in shape.
  auto store = VineyardStore::Build(loaded).value();
  const label_t buyer = store->schema().FindVertexLabel("Buyer").value();
  const label_t buy = store->schema().FindEdgeLabel("BUY").value();
  const vid_t v2 = store->FindVertex(buyer, 2).value();
  EXPECT_EQ(store->OutNeighbors(v2, buy).size(), 2u);
  const auto& table = store->vertex_table(buyer);
  // Order may differ; both usernames must be present.
  std::multiset<std::string> names{table.Get(0, 0).AsString(),
                                   table.Get(1, 0).AsString()};
  EXPECT_EQ(names, (std::multiset<std::string>{"A1", "B2"}));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, GraphArRoundTrip,
                         ::testing::Values(1, 2, 3, 1024));

TEST(GraphArTest, ScanVerticesWithPushdown) {
  PropertyGraphData data = EcommerceData();
  const std::string path = testing::TempDir() + "graphar_scan.gar";
  ASSERT_TRUE(graphar::WriteGraphAr(path, data, 2).ok());
  auto reader = graphar::GraphArReader::Open(path).value();
  const label_t buyer = reader->schema().FindVertexLabel("Buyer").value();
  std::vector<oid_t> rich;
  ASSERT_TRUE(reader
                  ->ScanVertices(buyer,
                                 [&](oid_t oid,
                                     const std::vector<PropertyValue>& row) {
                                   if (row[1].AsInt64() >= 15) {
                                     rich.push_back(oid);
                                   }
                                   return true;
                                 })
                  .ok());
  EXPECT_EQ(rich, (std::vector<oid_t>{2}));
}

TEST(GraphArTest, FetchNeighborsUsesChunkIndex) {
  EdgeList list = datagen::GenerateUniform(500, 5000, 12);
  PropertyGraphData data = MakeSimpleGraphData(list, /*with_weights=*/false);
  const std::string path = testing::TempDir() + "graphar_nbrs.gar";
  ASSERT_TRUE(graphar::WriteGraphAr(path, data, 256).ok());
  auto reader = graphar::GraphArReader::Open(path).value();

  // Reference adjacency.
  std::multiset<oid_t> expected;
  for (const RawEdge& e : list.edges) {
    if (e.src == 123) expected.insert(static_cast<oid_t>(e.dst));
  }
  auto fetched = reader->FetchNeighbors(0, 123).value();
  EXPECT_EQ(std::multiset<oid_t>(fetched.begin(), fetched.end()), expected);
}

TEST(GraphArTest, OpenDirectServesTopologyAndLazyProperties) {
  PropertyGraphData data = EcommerceData();
  const std::string path = testing::TempDir() + "graphar_direct.gar";
  ASSERT_TRUE(graphar::WriteGraphAr(path, data, 2).ok());
  auto reader = graphar::GraphArReader::Open(path).value();
  auto g = reader->OpenDirect().value();
  EXPECT_EQ(g->backend_name(), "graphar");
  EXPECT_EQ(g->NumVertices(), 4u);
  const label_t buyer = g->schema().FindVertexLabel("Buyer").value();
  const label_t buy = g->schema().FindEdgeLabel("BUY").value();
  const vid_t v2 = g->FindVertex(buyer, 2).value();
  EXPECT_EQ(CollectNeighborOids(*g, v2, Direction::kOut, buy),
            (std::vector<oid_t>{3, 4}));
  EXPECT_EQ(g->GetVertexProperty(v2, 0).AsString(), "B2");
  // Edge property via in-edge ids.
  const label_t item = g->schema().FindVertexLabel("Item").value();
  const vid_t v4 = g->FindVertex(item, 4).value();
  std::multiset<int64_t> dates;
  grin::ForEachAdj(*g, v4, Direction::kIn, buy, [&](vid_t, double, eid_t e) {
    dates.insert(g->GetEdgeProperty(buy, e, 0).AsInt64());
    return true;
  });
  EXPECT_EQ(dates, (std::multiset<int64_t>{105}));
}

TEST(GraphArTest, FetchNeighborsOfUnknownSourceIsEmpty) {
  EdgeList list = datagen::GenerateUniform(100, 500, 2);
  PropertyGraphData data = MakeSimpleGraphData(list, false);
  const std::string path = testing::TempDir() + "graphar_missing.gar";
  ASSERT_TRUE(graphar::WriteGraphAr(path, data, 64).ok());
  auto reader = graphar::GraphArReader::Open(path).value();
  EXPECT_TRUE(reader->FetchNeighbors(0, 999999).value().empty());
  EXPECT_FALSE(reader->FetchNeighbors(5, 0).ok());  // Bad edge label.
}

TEST(GraphArTest, ScanVerticesEarlyStop) {
  PropertyGraphData data = EcommerceData();
  const std::string path = testing::TempDir() + "graphar_stop.gar";
  ASSERT_TRUE(graphar::WriteGraphAr(path, data, 1).ok());
  auto reader = graphar::GraphArReader::Open(path).value();
  size_t visited = 0;
  ASSERT_TRUE(reader
                  ->ScanVertices(0,
                                 [&](oid_t, const std::vector<PropertyValue>&) {
                                   return ++visited < 1;
                                 })
                  .ok());
  EXPECT_EQ(visited, 1u);
}

TEST(GraphArTest, OpenRejectsGarbage) {
  const std::string path = testing::TempDir() + "garbage.gar";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "this is not an archive";
  }
  EXPECT_EQ(graphar::GraphArReader::Open(path).status().code(),
            StatusCode::kIoError);
  EXPECT_FALSE(graphar::GraphArReader::Open("/nonexistent/x.gar").ok());
}

// ------------------------------------------------------------------ CSV

TEST(CsvTest, RoundTrip) {
  PropertyGraphData data = EcommerceData();
  const std::string dir = testing::TempDir() + "csv_rt";
  ASSERT_TRUE(graphar::WriteCsv(dir, data).ok());
  PropertyGraphData loaded = graphar::ReadCsv(dir, data.schema).value();
  EXPECT_EQ(loaded.total_vertices(), data.total_vertices());
  EXPECT_EQ(loaded.total_edges(), data.total_edges());
  EXPECT_EQ(loaded.vertices[0].rows[0][0].AsString(), "A1");
  EXPECT_DOUBLE_EQ(loaded.vertices[1].rows[0][0].AsDouble(), 9.5);
  EXPECT_EQ(loaded.edges[1].rows[2][0].AsInt64(), 105);
}

TEST(CsvTest, MissingFileErrors) {
  GraphSchema schema;
  ASSERT_TRUE(schema.AddVertexLabel("Ghost", {}).ok());
  EXPECT_EQ(graphar::ReadCsv("/nonexistent_dir_xyz", schema).status().code(),
            StatusCode::kIoError);
}

// ---------------------------------------------------- GRIN negotiation

TEST(GrinNegotiationTest, BackendsAdvertiseDifferentTraits) {
  PropertyGraphData data = EcommerceData();
  auto vineyard = VineyardStore::Build(data).value();
  auto vg = vineyard->GetGrinHandle();
  EXPECT_TRUE(vg->RequireTraits(grin::kPropertyColumnArray).ok());

  GraphSchema simple_schema;
  label_t v = simple_schema.AddVertexLabel("V", {}).value();
  simple_schema.AddEdgeLabel("E", v, v, {}).value();
  auto gart = GartStore::Create(simple_schema).value();
  auto gs = gart->GetSnapshot();
  // GART cannot provide contiguous columns or vertex ranges.
  EXPECT_EQ(gs->RequireTraits(grin::kPropertyColumnArray).code(),
            StatusCode::kCapabilityMissing);
  EXPECT_EQ(gs->RequireTraits(grin::kVertexListArray).code(),
            StatusCode::kCapabilityMissing);
  // But both honour the iterator trait, so one engine serves both.
  EXPECT_TRUE(vg->RequireTraits(grin::kAdjacentListIterator).ok());
  EXPECT_TRUE(gs->RequireTraits(grin::kAdjacentListIterator).ok());
}

TEST(GrinNegotiationTest, SameAlgorithmRunsOnAllBackends) {
  // A tiny "count all edges via GRIN" engine, run unchanged on three
  // backends — the essence of Exp-1/Fig 7(a).
  EdgeList list = datagen::GenerateUniform(300, 3000, 21);
  PropertyGraphData data = MakeSimpleGraphData(list);
  auto vineyard = VineyardStore::Build(data).value();
  auto gart = GartStore::Build(data).value();
  const std::string path = testing::TempDir() + "grin_all.gar";
  ASSERT_TRUE(graphar::WriteGraphAr(path, data).ok());
  auto reader = graphar::GraphArReader::Open(path).value();

  auto count_edges = [](const grin::GrinGraph& g) {
    size_t total = 0;
    for (vid_t v = 0; v < g.NumVertices(); ++v) {
      grin::ForEachAdj(g, v, Direction::kOut, 0,
                       [&](vid_t, double, eid_t) { ++total; return true; });
    }
    return total;
  };
  EXPECT_EQ(count_edges(*vineyard->GetGrinHandle()), 3000u);
  EXPECT_EQ(count_edges(*gart->GetSnapshot()), 3000u);
  EXPECT_EQ(count_edges(*reader->OpenDirect().value()), 3000u);
}

}  // namespace
}  // namespace flex::storage
