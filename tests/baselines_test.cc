#include <gtest/gtest.h>

#include "baselines/analytics_baselines.h"
#include "baselines/relational.h"
#include "datagen/generators.h"
#include "grape/apps/pagerank.h"
#include "grape/apps/traversal.h"

namespace flex::baselines {
namespace {

EdgeList TestGraph() {
  EdgeList g = datagen::GenerateRmat({.scale = 9, .edge_factor = 8.0,
                                      .a = 0.57, .b = 0.19, .c = 0.19,
                                      .seed = 11});
  return g;
}

/// All three comparator engines must agree with GRAPE on results — the
/// benchmarks compare *performance*, not answers.
TEST(BaselineEnginesTest, PageRankAgreesWithGrape) {
  EdgeList g = TestGraph();
  EdgeCutPartitioner part(g.num_vertices, 2);
  auto frags = grape::Partition(g, part);
  auto want = grape::RunPageRank(frags, 8, 0.85);

  GasEngine gas(g, 2);
  PushPullEngine pp(g, 2);
  FineGrainedEngine fg(g, 2);
  auto gas_pr = gas.PageRank(8);
  auto pp_pr = pp.PageRank(8);
  auto fg_pr = fg.PageRank(8);
  for (vid_t v = 0; v < g.num_vertices; ++v) {
    EXPECT_NEAR(gas_pr[v], want[v], 1e-9) << v;
    EXPECT_NEAR(pp_pr[v], want[v], 1e-9) << v;
    EXPECT_NEAR(fg_pr[v], want[v], 1e-9) << v;
  }
}

TEST(BaselineEnginesTest, BfsAgreesWithGrape) {
  EdgeList g = TestGraph();
  EdgeCutPartitioner part(g.num_vertices, 2);
  auto frags = grape::Partition(g, part);
  auto want = grape::RunBfs(frags, 1);

  GasEngine gas(g, 2);
  PushPullEngine pp(g, 2);
  FineGrainedEngine fg(g, 2);
  EXPECT_EQ(gas.Bfs(1), want);
  EXPECT_EQ(pp.Bfs(1), want);
  EXPECT_EQ(fg.Bfs(1), want);
}

TEST(RelTableTest, SelectScansRows) {
  RelTable t(2);
  t.AppendRow({1, 10});
  t.AppendRow({2, 20});
  t.AppendRow({1, 30});
  RelTable sel = t.Select(0, 1);
  ASSERT_EQ(sel.num_rows(), 2u);
  EXPECT_EQ(sel.At(0, 1), 10);
  EXPECT_EQ(sel.At(1, 1), 30);
}

TEST(RelTableTest, HashJoin) {
  RelTable edges(2);
  edges.AppendRow({0, 1});
  edges.AppendRow({1, 2});
  edges.AppendRow({1, 3});
  // Two-hop: edges JOIN edges ON a.dst == b.src.
  RelTable two_hop = edges.Join(1, edges, 0);
  ASSERT_EQ(two_hop.num_rows(), 2u);  // 0->1->2 and 0->1->3.
  EXPECT_EQ(two_hop.At(0, 0), 0);
  EXPECT_EQ(two_hop.num_columns(), 4u);
}

TEST(RelTableTest, GroupBySum) {
  RelTable t(2);
  t.AppendRow({5, 1.5});
  t.AppendRow({5, 2.5});
  t.AppendRow({7, 1.0});
  RelTable grouped = t.GroupBySum(0, 1);
  ASSERT_EQ(grouped.num_rows(), 2u);
  double sum5 = 0, sum7 = 0;
  for (size_t r = 0; r < grouped.num_rows(); ++r) {
    if (grouped.At(r, 0) == 5) sum5 = grouped.At(r, 1);
    if (grouped.At(r, 0) == 7) sum7 = grouped.At(r, 1);
  }
  EXPECT_DOUBLE_EQ(sum5, 4.0);
  EXPECT_DOUBLE_EQ(sum7, 1.0);
}

}  // namespace
}  // namespace flex::baselines
