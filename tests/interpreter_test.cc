#include <gtest/gtest.h>

#include "common/random.h"
#include "grape/message_manager.h"
#include "query/interpreter.h"
#include "storage/vineyard/vineyard_store.h"

namespace flex::query {
namespace {

using ir::BinOp;
using ir::Expr;
using ir::ExprPtr;
using ir::PlanBuilder;

/// Five "V" vertices with x = {3, 1, 4, 1, 5}; edges 0->1,0->2,1->3,3->0.
std::unique_ptr<storage::VineyardStore> OpStore() {
  PropertyGraphData data;
  label_t v =
      data.schema.AddVertexLabel("V", {{"x", PropertyType::kInt64}}).value();
  data.schema.AddEdgeLabel("E", v, v, {}).value();
  const int64_t xs[] = {3, 1, 4, 1, 5};
  for (oid_t i = 0; i < 5; ++i) {
    data.AddVertex(v, i, {PropertyValue(xs[i])});
  }
  data.AddEdge(0, 0, 1, {});
  data.AddEdge(0, 0, 2, {});
  data.AddEdge(0, 1, 3, {});
  data.AddEdge(0, 3, 0, {});
  return storage::VineyardStore::Build(data).value();
}

class InterpreterOpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = OpStore();
    graph_ = store_->GetGrinHandle();
  }
  std::vector<std::string> Run(ir::Plan plan) {
    Interpreter interp(graph_.get());
    auto rows = interp.Run(plan);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return RowsToStrings(rows.value());
  }
  std::unique_ptr<storage::VineyardStore> store_;
  std::unique_ptr<grin::GrinGraph> graph_;
};

TEST_F(InterpreterOpTest, OrderIsStableOnTies) {
  // Sort by x ascending: vertices 1 and 3 tie on x=1; stable sort keeps
  // scan order (vid 1 before vid 3).
  PlanBuilder b;
  b.Scan("a", 0);
  std::vector<ExprPtr> keys;
  keys.push_back(Expr::Property(0, "x"));
  b.Order(std::move(keys), {true});
  std::vector<ExprPtr> out;
  out.push_back(Expr::VertexId(0));
  b.Project(std::move(out), {"id"});
  EXPECT_EQ(Run(b.Build()),
            (std::vector<std::string>{"1", "3", "0", "2", "4"}));
}

TEST_F(InterpreterOpTest, OrderDescendingWithTopK) {
  PlanBuilder b;
  b.Scan("a", 0);
  std::vector<ExprPtr> keys;
  keys.push_back(Expr::Property(0, "x"));
  b.Order(std::move(keys), {false}, /*limit=*/2);
  std::vector<ExprPtr> out;
  out.push_back(Expr::Property(0, "x"));
  b.Project(std::move(out), {"x"});
  EXPECT_EQ(Run(b.Build()), (std::vector<std::string>{"5", "4"}));
}

TEST_F(InterpreterOpTest, LimitBeyondRowCountIsHarmless) {
  PlanBuilder b;
  b.Scan("a", 0);
  b.Limit(100);
  std::vector<ExprPtr> out;
  out.push_back(Expr::VertexId(0));
  b.Project(std::move(out), {"id"});
  EXPECT_EQ(Run(b.Build()).size(), 5u);
}

TEST_F(InterpreterOpTest, DedupWholeRowAndKeyed) {
  // x values {3,1,4,1,5}: dedup on x keeps 4 rows.
  PlanBuilder b;
  b.Scan("a", 0);
  std::vector<ExprPtr> proj;
  proj.push_back(Expr::Property(0, "x"));
  b.Project(std::move(proj), {"x"});
  b.Dedup({});  // Whole-row dedup.
  EXPECT_EQ(Run(b.Build()).size(), 4u);
}

TEST_F(InterpreterOpTest, GroupAggregateFinalizers) {
  PlanBuilder b;
  b.Scan("a", 0);
  std::vector<ir::AggSpec> aggs;
  auto make = [&](ir::AggSpec::Fn fn, const char* name) {
    ir::AggSpec spec;
    spec.fn = fn;
    spec.arg = Expr::Property(0, "x");
    spec.name = name;
    aggs.push_back(std::move(spec));
  };
  make(ir::AggSpec::Fn::kSum, "sum");
  make(ir::AggSpec::Fn::kMin, "min");
  make(ir::AggSpec::Fn::kMax, "max");
  make(ir::AggSpec::Fn::kAvg, "avg");
  b.Group({}, {}, std::move(aggs));
  auto lines = Run(b.Build());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "14 | 1 | 5 | 2.800000");
}

TEST_F(InterpreterOpTest, ExpandIntoFiltersNonEdges) {
  // (a)-[:E]->(b), then close (b)-[:E]->(a): only 3->0 has 0->... wait:
  // pairs with a reciprocal edge: 0->1? 1->0 absent. 3->0 & 0->3 absent.
  // Only cycles of length 2 survive; none exist here.
  PlanBuilder b;
  const size_t a = b.Scan("a", 0);
  const size_t e = b.ExpandEdge(a, 0, Direction::kOut, "");
  const size_t t = b.GetVertex(e, a, "b");
  b.ExpandInto(t, a, 0, Direction::kOut);
  std::vector<ExprPtr> out;
  out.push_back(Expr::VertexId(a));
  b.Project(std::move(out), {"id"});
  EXPECT_TRUE(Run(b.Build()).empty());

  // 1->3->0 plus 0->1 forms a 3-cycle: (a)->(b)->(c) with (c)->(a).
  PlanBuilder b2;
  const size_t a2 = b2.Scan("a", 0);
  const size_t e2 = b2.ExpandEdge(a2, 0, Direction::kOut, "");
  const size_t v2 = b2.GetVertex(e2, a2, "b");
  const size_t e3 = b2.ExpandEdge(v2, 0, Direction::kOut, "");
  const size_t v3 = b2.GetVertex(e3, v2, "c");
  b2.ExpandInto(v3, a2, 0, Direction::kOut);
  std::vector<ExprPtr> out2;
  out2.push_back(Expr::VertexId(a2));
  b2.Project(std::move(out2), {"id"});
  auto cycles = Run(b2.Build());
  ASSERT_EQ(cycles.size(), 3u);  // Each rotation of the 0->1->3->0 cycle.
}

TEST_F(InterpreterOpTest, ShardingPartitionsScanExactly) {
  PlanBuilder b;
  b.Scan("a", 0);
  std::vector<ExprPtr> out;
  out.push_back(Expr::VertexId(0));
  b.Project(std::move(out), {"id"});
  ir::Plan plan = b.Build();
  Interpreter interp(graph_.get());
  std::vector<std::string> merged;
  for (size_t shard = 0; shard < 3; ++shard) {
    ExecOptions opts;
    opts.shard_index = shard;
    opts.shard_count = 3;
    auto rows = interp.Run(plan, opts).value();
    for (auto& line : RowsToStrings(rows)) merged.push_back(line);
  }
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, (std::vector<std::string>{"0", "1", "2", "3", "4"}));
}

TEST_F(InterpreterOpTest, RowAndBatchedPathsAgree) {
  // One plan per streaming/blocking operator shape; each must produce
  // bit-identical rows under the columnar path and the row-at-a-time path.
  auto both = [&](ir::Plan plan) {
    Interpreter interp(graph_.get());
    ExecOptions row_opts;
    row_opts.vectorized = false;
    auto row = interp.Run(plan, row_opts);
    auto batched = interp.Run(plan);  // Vectorized is the default.
    ASSERT_TRUE(row.ok()) << row.status().ToString();
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    EXPECT_EQ(RowsToStrings(row.value()), RowsToStrings(batched.value()));
  };

  {  // SCAN + SELECT + PROJECT: selection flips bits, no copy.
    PlanBuilder b;
    b.Scan("a", 0);
    b.Select(Expr::Binary(BinOp::kGe, Expr::Property(0, "x"),
                          Expr::Const(PropertyValue(int64_t{3}))));
    std::vector<ExprPtr> out;
    out.push_back(Expr::Property(0, "x"));
    b.Project(std::move(out), {"x"});
    both(b.Build());
  }
  {  // EXPAND + GETV with a computed projection.
    PlanBuilder b;
    const size_t a = b.Scan("a", 0);
    const size_t e = b.ExpandEdge(a, 0, Direction::kBoth, "");
    const size_t t = b.GetVertex(e, a, "b");
    std::vector<ExprPtr> out;
    out.push_back(Expr::VertexId(a));
    out.push_back(Expr::Binary(BinOp::kAdd, Expr::Property(t, "x"),
                               Expr::Const(PropertyValue(int64_t{10}))));
    b.Project(std::move(out), {"id", "x10"});
    both(b.Build());
  }
  {  // Blocking ops ride the batch->row bridge.
    PlanBuilder b;
    b.Scan("a", 0);
    std::vector<ExprPtr> keys;
    keys.push_back(Expr::Property(0, "x"));
    b.Order(std::move(keys), {false});
    std::vector<ir::AggSpec> aggs;
    ir::AggSpec spec;
    spec.fn = ir::AggSpec::Fn::kSum;
    spec.arg = Expr::Property(0, "x");
    spec.name = "sum";
    aggs.push_back(std::move(spec));
    std::vector<ExprPtr> gkeys;
    gkeys.push_back(Expr::Property(0, "x"));
    b.Group(std::move(gkeys), {"x"}, std::move(aggs));
    both(b.Build());
  }
  {  // Variable-length expansion bridges per batch.
    PlanBuilder b;
    const size_t a = b.Scan("a", 0);
    const size_t p = b.ExpandVar(a, 0, Direction::kOut, 1, 2, "p");
    std::vector<ExprPtr> out;
    out.push_back(Expr::VertexId(a));
    out.push_back(Expr::VertexId(p));
    b.Project(std::move(out), {"src", "dst"});
    both(b.Build());
  }
}

TEST_F(InterpreterOpTest, BatchedPathCrossesBatchBoundaries) {
  // 3000 vertices spans three kBatchSize windows; the mid-stream SELECT
  // must refine selections across every batch without losing rows.
  PropertyGraphData data;
  label_t v =
      data.schema.AddVertexLabel("V", {{"x", PropertyType::kInt64}}).value();
  for (oid_t i = 0; i < 3000; ++i) {
    data.AddVertex(v, i, {PropertyValue(static_cast<int64_t>(i))});
  }
  auto store = storage::VineyardStore::Build(data).value();
  auto graph = store->GetGrinHandle();

  PlanBuilder b;
  b.Scan("a", 0);
  b.Select(Expr::Binary(BinOp::kGe, Expr::Property(0, "x"),
                        Expr::Const(PropertyValue(int64_t{100}))));
  std::vector<ExprPtr> out;
  out.push_back(Expr::Property(0, "x"));
  b.Project(std::move(out), {"x"});
  const ir::Plan plan = b.Build();

  Interpreter interp(graph.get());
  ExecOptions row_opts;
  row_opts.vectorized = false;
  auto row = interp.Run(plan, row_opts);
  auto batched = interp.Run(plan);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(batched.ok());
  EXPECT_EQ(row.value().size(), 2900u);
  EXPECT_EQ(RowsToStrings(row.value()), RowsToStrings(batched.value()));
}

TEST_F(InterpreterOpTest, SumStaysExactAboveDoublePrecision) {
  // 2^53 is the first integer where IEEE doubles lose unit precision:
  // folding the sum through a double would collapse 2^53 + 1 + 1 back to
  // 2^53. The accumulator must keep int64 sums exact.
  PropertyGraphData data;
  label_t v =
      data.schema.AddVertexLabel("V", {{"x", PropertyType::kInt64}}).value();
  const int64_t big = int64_t{1} << 53;
  const int64_t xs[] = {big, 1, 1};
  for (oid_t i = 0; i < 3; ++i) {
    data.AddVertex(v, i, {PropertyValue(xs[i])});
  }
  auto store = storage::VineyardStore::Build(data).value();
  auto graph = store->GetGrinHandle();

  for (const bool vectorized : {false, true}) {
    PlanBuilder b;
    b.Scan("a", 0);
    std::vector<ir::AggSpec> aggs;
    ir::AggSpec spec;
    spec.fn = ir::AggSpec::Fn::kSum;
    spec.arg = Expr::Property(0, "x");
    spec.name = "sum";
    aggs.push_back(std::move(spec));
    b.Group({}, {}, std::move(aggs));
    Interpreter interp(graph.get());
    ExecOptions opts;
    opts.vectorized = vectorized;
    auto rows = interp.Run(b.Build(), opts);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(RowsToStrings(rows.value()),
              (std::vector<std::string>{"9007199254740994"}));
  }
}

TEST_F(InterpreterOpTest, WindowedShardingPartitionsScanExactly) {
  // The batched engine shards row-mode scans by contiguous windows; the
  // windows must tile the scan with no overlap and preserve scan order.
  PlanBuilder b;
  b.Scan("a", 0);
  std::vector<ExprPtr> out;
  out.push_back(Expr::VertexId(0));
  b.Project(std::move(out), {"id"});
  const ir::Plan plan = b.Build();
  Interpreter interp(graph_.get());
  std::vector<std::string> merged;
  const size_t bounds[] = {0, 2, 5};
  for (size_t w = 0; w < 2; ++w) {
    ExecOptions opts;
    opts.vectorized = false;
    opts.scan_begin = bounds[w];
    opts.scan_end = bounds[w + 1];
    auto rows = interp.Run(plan, opts).value();
    for (auto& line : RowsToStrings(rows)) merged.push_back(line);
  }
  // Concatenating window results in window order IS global scan order.
  EXPECT_EQ(merged, (std::vector<std::string>{"0", "1", "2", "3", "4"}));
}

TEST_F(InterpreterOpTest, MorselSourceHandsOutEachWindowOnce) {
  PlanBuilder b;
  b.Scan("a", 0);
  std::vector<ExprPtr> out;
  out.push_back(Expr::VertexId(0));
  b.Project(std::move(out), {"id"});
  const ir::Plan plan = b.Build();

  Interpreter interp(graph_.get());
  ScanMorselSource morsels(/*grain_size=*/2);
  ExecOptions opts;
  opts.morsels = &morsels;
  // The first "worker" drains every morsel window (claims are handed out
  // atomically, so a sequential run claims them all)...
  auto first = interp.RunRangeBatched(plan, 0, plan.ops.size(), {}, opts);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(RowsToStrings(ir::BatchesToRows(first.value())),
            (std::vector<std::string>{"0", "1", "2", "3", "4"}));
  // ...and a late-arriving worker sharing the source finds nothing left.
  auto second = interp.RunRangeBatched(plan, 0, plan.ops.size(), {}, opts);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().empty());
}

// ---------------------------------------------------- message codecs

template <typename T>
class MsgCodecTest : public ::testing::Test {};

using CodecTypes = ::testing::Types<double, uint32_t, uint64_t>;
TYPED_TEST_SUITE(MsgCodecTest, CodecTypes);

TYPED_TEST(MsgCodecTest, RoundTripsThroughManager) {
  grape::MessageManager<TypeParam> manager(2, grape::MessageMode::kAggregated);
  std::vector<std::pair<vid_t, TypeParam>> sent;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const vid_t target = static_cast<vid_t>(rng.Uniform(1000));
    const TypeParam value = static_cast<TypeParam>(rng.Next() % 100000);
    manager.Send(0, 1, target, value);
    sent.push_back({target, value});
  }
  manager.Flush();
  std::vector<std::pair<vid_t, TypeParam>> received;
  EXPECT_TRUE(manager
                  .Receive(1,
                           [&](vid_t t, const TypeParam& v) {
                             received.push_back({t, v});
                           })
                  .ok());
  EXPECT_EQ(received, sent);
  // Fragment 0 got nothing.
  size_t other = 0;
  EXPECT_TRUE(
      manager.Receive(0, [&](vid_t, const TypeParam&) { ++other; }).ok());
  EXPECT_EQ(other, 0u);
}

TEST(MsgCodecVectorTest, AdjacencyPayloadRoundTrip) {
  grape::MessageManager<std::vector<vid_t>> manager(
      2, grape::MessageMode::kAggregated);
  const std::vector<vid_t> payloads[] = {
      {}, {5}, {1, 2, 3, 1000000}, {7, 7, 7}};
  for (const auto& p : payloads) manager.Send(1, 0, 9, p);
  manager.Flush();
  size_t i = 0;
  EXPECT_TRUE(manager
                  .Receive(0,
                           [&](vid_t target, const std::vector<vid_t>& v) {
                             EXPECT_EQ(target, 9u);
                             EXPECT_EQ(v, payloads[i++]);
                           })
                  .ok());
  EXPECT_EQ(i, 4u);
}

TEST(MessageManagerTest, ModesDeliverIdentically) {
  for (auto mode : {grape::MessageMode::kAggregated,
                    grape::MessageMode::kPerMessage}) {
    grape::MessageManager<uint32_t> manager(3, mode);
    manager.Send(0, 2, 11, 100);
    manager.Send(1, 2, 12, 200);
    manager.Send(2, 2, 13, 300);
    EXPECT_EQ(manager.Flush(), 1u);  // Only fragment 2 has traffic.
    std::vector<uint32_t> got;
    EXPECT_TRUE(
        manager.Receive(2, [&](vid_t, uint32_t v) { got.push_back(v); }).ok());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<uint32_t>{100, 200, 300}));
    // Second flush with nothing sent: channels drain.
    EXPECT_EQ(manager.Flush(), 0u);
    size_t empty = 0;
    EXPECT_TRUE(manager.Receive(2, [&](vid_t, uint32_t) { ++empty; }).ok());
    EXPECT_EQ(empty, 0u);
  }
}

}  // namespace
}  // namespace flex::query
