#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "learn/pipeline.h"
#include "storage/simple.h"
#include "storage/vineyard/vineyard_store.h"

namespace flex::learn {
namespace {

// ----------------------------------------------------------------- Tensor

TEST(TensorTest, MatMulSmall) {
  Tensor a(2, 3), b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]].
  float av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data().begin());
  std::copy(bv, bv + 6, b.data().begin());
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(TensorTest, TransposedVariantsAgreeWithExplicit) {
  Tensor a = Tensor::Random(4, 5, 1, 1.0f);
  Tensor b = Tensor::Random(3, 5, 2, 1.0f);
  // MatMulTransposedB(a, b) == a * b^T.
  Tensor bt(5, 3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 5; ++j) bt.at(j, i) = b.at(i, j);
  }
  Tensor want = MatMul(a, bt);
  Tensor got = MatMulTransposedB(a, b);
  for (size_t i = 0; i < want.data().size(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 1e-4);
  }
}

TEST(TensorTest, SoftmaxCrossEntropyGradientChecks) {
  Tensor logits(2, 3);
  float lv[] = {1.0f, 2.0f, 0.5f, -1.0f, 0.0f, 1.0f};
  std::copy(lv, lv + 6, logits.data().begin());
  std::vector<int> labels = {1, 2};
  Tensor grad;
  const float loss = SoftmaxCrossEntropy(logits, labels, &grad);
  EXPECT_GT(loss, 0.0f);
  // Gradient rows sum to zero (softmax property).
  for (size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < 3; ++c) sum += grad.at(r, c);
    EXPECT_NEAR(sum, 0.0f, 1e-6);
  }
  // Finite-difference check on one coordinate.
  const float eps = 1e-3f;
  Tensor bumped = logits;
  bumped.at(0, 1) += eps;
  Tensor unused;
  const float loss2 = SoftmaxCrossEntropy(bumped, labels, &unused);
  EXPECT_NEAR((loss2 - loss) / eps, grad.at(0, 1), 1e-2);
}

TEST(MlpTest, LearnsLinearlySeparableData) {
  // Two classes separated on feature 0.
  const size_t n = 256;
  Tensor x(n, 4);
  std::vector<int> labels(n);
  Rng rng(3);
  for (size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    labels[i] = label;
    x.at(i, 0) = label == 0 ? -1.0f : 1.0f;
    for (size_t d = 1; d < 4; ++d) {
      x.at(i, d) = static_cast<float>(rng.NextDouble()) - 0.5f;
    }
  }
  Mlp mlp(4, 8, 2, 7);
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 200; ++step) {
    const float loss = mlp.TrainStep(x, labels, 0.5f);
    if (step == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.5f);
  EXPECT_GT(mlp.Accuracy(x, labels), 0.95f);
}

TEST(MlpTest, AveragingReplicasKeepsDimensions) {
  Mlp a(4, 8, 2, 1), b(4, 8, 2, 2), target(4, 8, 2, 3);
  target.AverageFrom({&a, &b});
  for (size_t i = 0; i < target.w1().data().size(); ++i) {
    EXPECT_FLOAT_EQ(target.w1().data()[i],
                    (a.w1().data()[i] + b.w1().data()[i]) / 2.0f);
  }
}

// ---------------------------------------------------------------- Sampler

class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EdgeList list = datagen::GenerateRmat(
        {.scale = 10, .edge_factor = 12.0, .a = 0.57, .b = 0.19, .c = 0.19,
         .seed = 5});
    store_ = storage::VineyardStore::Build(
                 storage::MakeSimpleGraphData(list, false))
                 .value();
    graph_ = store_->GetGrinHandle();
  }

  std::unique_ptr<storage::VineyardStore> store_;
  std::unique_ptr<grin::GrinGraph> graph_;
};

TEST_F(SamplerTest, FeaturesAreDeterministicAndLabelCorrelated) {
  FeatureStore fs(16, 4, 9);
  std::vector<float> a(16), b(16);
  fs.Collect(42, a.data());
  fs.Collect(42, b.data());
  EXPECT_EQ(a, b);
  EXPECT_EQ(fs.Label(42), fs.Label(42));
  EXPECT_LT(fs.Label(42), 4);
}

TEST_F(SamplerTest, FanoutBoundsRespected) {
  FeatureStore fs(8, 4, 1);
  NeighborSampler sampler(graph_.get(), 0, {5, 3}, &fs);
  Rng rng(2);
  std::vector<vid_t> seeds = {0, 1, 2, 3};
  SampleBatch batch = sampler.Sample(seeds, rng);
  EXPECT_EQ(batch.features.rows(), 4u);
  EXPECT_EQ(batch.features.cols(), 8u);
  EXPECT_EQ(batch.labels.size(), 4u);
  // At most 5 + 5*3 neighbors per seed.
  EXPECT_LE(batch.hops_expanded, 4u * (5 + 15));
}

TEST_F(SamplerTest, LinkBatchHasPositivesAndNegatives) {
  FeatureStore fs(8, 2, 1);
  NeighborSampler sampler(graph_.get(), 0, {4, 2}, &fs);
  Rng rng(7);
  std::vector<std::pair<vid_t, vid_t>> pos = {{0, 1}, {2, 3}};
  SampleBatch batch =
      sampler.SampleLinkBatch(pos, 3, graph_->NumVertices(), rng);
  EXPECT_EQ(batch.features.rows(), 5u);
  EXPECT_EQ(batch.features.cols(), 24u);  // 3 * dim.
  EXPECT_EQ(batch.labels,
            (std::vector<int>{1, 1, 0, 0, 0}));
}

// --------------------------------------------------------------- Pipeline

TEST_F(SamplerTest, PipelineTrainsAndLearns) {
  PipelineConfig config;
  config.fanouts = {4, 2};
  config.batch_size = 128;
  config.feature_dim = 16;
  config.hidden_dim = 16;
  config.num_classes = 4;
  config.num_samplers = 2;
  config.num_trainers = 2;
  TrainingPipeline pipeline(graph_.get(), 0, config);
  const float before = pipeline.Evaluate();
  EpochStats stats{};
  for (int epoch = 0; epoch < 3; ++epoch) {
    stats = pipeline.TrainEpoch(epoch);
  }
  EXPECT_EQ(stats.samples, graph_->NumVertices());
  EXPECT_GT(stats.batches, 0u);
  const float after = pipeline.Evaluate();
  // Features encode the label, so a trained model beats the initial one
  // and clears random chance (0.25) comfortably.
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.5f);
}

TEST_F(SamplerTest, PipelineScaleConfigsProduceSameVolume) {
  for (size_t groups : {1u, 2u}) {
    for (size_t trainers : {1u, 2u}) {
      PipelineConfig config;
      config.fanouts = {3};
      config.batch_size = 64;
      config.feature_dim = 8;
      config.num_classes = 4;
      config.num_trainers = trainers;
      config.num_groups = groups;
      TrainingPipeline pipeline(graph_.get(), 0, config);
      EpochStats stats = pipeline.TrainEpoch(0);
      EXPECT_EQ(stats.samples, graph_->NumVertices())
          << groups << "x" << trainers;
    }
  }
}

}  // namespace
}  // namespace flex::learn
