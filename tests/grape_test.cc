#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <numeric>
#include <set>
#include <queue>

#include "common/barrier.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "datagen/generators.h"
#include "grape/apps/cdlp.h"
#include "grape/apps/equity.h"
#include "grape/apps/kcore.h"
#include "grape/apps/pagerank.h"
#include "grape/apps/traversal.h"
#include "grape/flash.h"
#include "grape/ingress.h"
#include "grape/message_manager.h"
#include "grape/pregel.h"

namespace flex::grape {
namespace {

// --------------------------------------------------- reference kernels

std::vector<double> ReferencePageRank(const EdgeList& g, int iters,
                                      double damping) {
  const vid_t n = g.num_vertices;
  std::vector<uint32_t> outdeg(n, 0);
  for (const RawEdge& e : g.edges) ++outdeg[e.src];
  std::vector<double> rank(n, 1.0 / n), next(n);
  for (int it = 0; it < iters; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (vid_t v = 0; v < n; ++v) {
      if (outdeg[v] == 0) dangling += rank[v];
    }
    for (const RawEdge& e : g.edges) next[e.dst] += rank[e.src] / outdeg[e.src];
    for (vid_t v = 0; v < n; ++v) {
      rank[v] = (1.0 - damping) / n + damping * (next[v] + dangling / n);
    }
  }
  return rank;
}

std::vector<uint32_t> ReferenceBfs(const EdgeList& g, vid_t source) {
  std::vector<std::vector<vid_t>> adj(g.num_vertices);
  for (const RawEdge& e : g.edges) adj[e.src].push_back(e.dst);
  std::vector<uint32_t> depth(g.num_vertices, kUnreachedDepth);
  std::queue<vid_t> queue;
  depth[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const vid_t v = queue.front();
    queue.pop();
    for (vid_t u : adj[v]) {
      if (depth[u] == kUnreachedDepth) {
        depth[u] = depth[v] + 1;
        queue.push(u);
      }
    }
  }
  return depth;
}

std::vector<double> ReferenceSssp(const EdgeList& g, vid_t source) {
  std::vector<std::vector<std::pair<vid_t, double>>> adj(g.num_vertices);
  for (const RawEdge& e : g.edges) adj[e.src].push_back({e.dst, e.weight});
  std::vector<double> dist(g.num_vertices, kUnreachedDist);
  using Item = std::pair<double, vid_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    for (auto [u, w] : adj[v]) {
      if (d + w < dist[u]) {
        dist[u] = d + w;
        heap.push({dist[u], u});
      }
    }
  }
  return dist;
}

/// Union-find reference for WCC over the undirected closure.
std::vector<uint32_t> ReferenceWcc(const EdgeList& g) {
  std::vector<uint32_t> parent(g.num_vertices);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const RawEdge& e : g.edges) {
    const uint32_t a = find(e.src), b = find(e.dst);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  // Fully compress, then canonicalize to the min vertex in the component.
  std::vector<uint32_t> label(g.num_vertices);
  for (vid_t v = 0; v < g.num_vertices; ++v) label[v] = find(v);
  return label;
}

EdgeList TestGraph() {
  EdgeList g = datagen::GenerateRmat({.scale = 10, .edge_factor = 8.0,
                                      .a = 0.57, .b = 0.19, .c = 0.19,
                                      .seed = 42});
  datagen::AssignWeights(&g, 7);
  return g;
}

class FragmentCounts : public ::testing::TestWithParam<partition_t> {};

// ------------------------------------------------------------ Fragment

TEST_P(FragmentCounts, PartitionCoversAllEdges) {
  EdgeList g = TestGraph();
  EdgeCutPartitioner part(g.num_vertices, GetParam());
  auto frags = Partition(g, part);
  size_t inner_total = 0, edge_total = 0, in_edge_total = 0;
  for (const auto& frag : frags) {
    inner_total += frag->inner_vertices().size();
    edge_total += frag->num_inner_edges();
    for (vid_t v : frag->inner_vertices()) {
      in_edge_total += frag->InDegree(v);
      EXPECT_TRUE(frag->IsInner(v));
      EXPECT_EQ(frag->GlobalOutDegree(v), frag->OutDegree(v));
    }
  }
  EXPECT_EQ(inner_total, g.num_vertices);
  EXPECT_EQ(edge_total, g.num_edges());
  EXPECT_EQ(in_edge_total, g.num_edges());
}

TEST(FragmentTest, OwnerMapSurvivesMoreThan256Partitions) {
  // owner_ used to be a byte map: partition ids beyond 255 were stored
  // mod 256, so OwnerOf misrouted every message on a >256-fragment
  // deployment while all small-fragment tests stayed green. Build with 300
  // partitions and check the materialized map against the partitioner.
  EdgeList g = datagen::GenerateRmat({.scale = 11, .edge_factor = 4.0,
                                      .a = 0.57, .b = 0.19, .c = 0.19,
                                      .seed = 5});
  const partition_t kParts = 300;
  EdgeCutPartitioner part(g.num_vertices, kParts);
  partition_t max_partition = 0;
  for (vid_t v = 0; v < g.num_vertices; ++v) {
    max_partition = std::max(max_partition, part.GetPartition(v));
  }
  // The scenario only bites if some vertex actually lands beyond 255.
  ASSERT_GT(max_partition, 255u);
  auto frags = Partition(g, part);
  ASSERT_EQ(frags.size(), static_cast<size_t>(kParts));
  for (vid_t v = 0; v < g.num_vertices; ++v) {
    const partition_t owner = part.GetPartition(v);
    EXPECT_EQ(frags[0]->OwnerOf(v), owner) << "vertex " << v;
    EXPECT_EQ(frags[owner]->IsInner(v), true) << "vertex " << v;
    if (owner != 0) {
      EXPECT_FALSE(frags[0]->IsInner(v)) << "vertex " << v;
    }
  }
}

// ------------------------------------------------------------ PageRank

TEST_P(FragmentCounts, PageRankMatchesReference) {
  EdgeList g = TestGraph();
  EdgeCutPartitioner part(g.num_vertices, GetParam());
  auto frags = Partition(g, part);
  auto got = RunPageRank(frags, 10, 0.85);
  auto want = ReferencePageRank(g, 10, 0.85);
  ASSERT_EQ(got.size(), want.size());
  double total = 0.0;
  for (vid_t v = 0; v < g.num_vertices; ++v) {
    EXPECT_NEAR(got[v], want[v], 1e-10) << "vertex " << v;
    total += got[v];
  }
  EXPECT_NEAR(total, 1.0, 1e-6);  // Rank mass conserved (dangling handled).
}

TEST(PageRankTest, PerMessageModeSameResult) {
  EdgeList g = TestGraph();
  EdgeCutPartitioner part(g.num_vertices, 3);
  auto frags = Partition(g, part);
  auto agg = RunPageRank(frags, 5, 0.85, MessageMode::kAggregated);
  auto per = RunPageRank(frags, 5, 0.85, MessageMode::kPerMessage);
  for (vid_t v = 0; v < g.num_vertices; ++v) {
    EXPECT_NEAR(agg[v], per[v], 1e-9);
  }
}

// ----------------------------------------------------------- Traversal

TEST_P(FragmentCounts, BfsMatchesReference) {
  EdgeList g = TestGraph();
  EdgeCutPartitioner part(g.num_vertices, GetParam());
  auto frags = Partition(g, part);
  auto got = RunBfs(frags, 0);
  auto want = ReferenceBfs(g, 0);
  EXPECT_EQ(got, want);
}

TEST_P(FragmentCounts, SsspMatchesReference) {
  EdgeList g = TestGraph();
  EdgeCutPartitioner part(g.num_vertices, GetParam());
  auto frags = Partition(g, part);
  auto got = RunSssp(frags, 0);
  auto want = ReferenceSssp(g, 0);
  for (vid_t v = 0; v < g.num_vertices; ++v) {
    if (want[v] == kUnreachedDist) {
      EXPECT_EQ(got[v], kUnreachedDist);
    } else {
      EXPECT_NEAR(got[v], want[v], 1e-9) << "vertex " << v;
    }
  }
}

TEST_P(FragmentCounts, WccMatchesReference) {
  EdgeList g = TestGraph();
  EdgeCutPartitioner part(g.num_vertices, GetParam());
  auto frags = Partition(g, part);
  auto got = RunWcc(frags);
  auto want = ReferenceWcc(g);
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Fragments, FragmentCounts,
                         ::testing::Values(1, 2, 4));

TEST(BfsTest, DisconnectedSourceOnlyReachesItself) {
  EdgeList g;
  g.num_vertices = 5;
  g.edges = {{1, 2, 1.0}, {2, 3, 1.0}};
  EdgeCutPartitioner part(5, 2);
  auto frags = Partition(g, part);
  auto depth = RunBfs(frags, 0);
  EXPECT_EQ(depth[0], 0u);
  for (vid_t v = 1; v < 5; ++v) EXPECT_EQ(depth[v], kUnreachedDepth);
}

// ---------------------------------------------------------------- CDLP

TEST(CdlpTest, TwoCliquesConverge) {
  // Two 4-cliques joined by a single bridge edge: labels converge within
  // each clique.
  EdgeList g;
  g.num_vertices = 8;
  for (vid_t a = 0; a < 4; ++a) {
    for (vid_t b = 0; b < 4; ++b) {
      if (a != b) {
        g.edges.push_back({a, b, 1.0});
        g.edges.push_back({a + 4, b + 4, 1.0});
      }
    }
  }
  g.edges.push_back({3, 4, 1.0});
  EdgeCutPartitioner part(8, 2);
  auto frags = Partition(g, part);
  auto labels = RunCdlp(frags, 10);
  for (vid_t v = 0; v < 4; ++v) EXPECT_EQ(labels[v], labels[0]);
  for (vid_t v = 4; v < 8; ++v) EXPECT_EQ(labels[v], labels[4]);
}

TEST(CdlpTest, FixedRoundsTerminate) {
  EdgeList g = TestGraph();
  EdgeCutPartitioner part(g.num_vertices, 2);
  auto frags = Partition(g, part);
  auto labels = RunCdlp(frags, 5);
  EXPECT_EQ(labels.size(), g.num_vertices);
  for (uint32_t l : labels) EXPECT_LT(l, g.num_vertices);
}

// --------------------------------------------------------------- kcore

TEST(KCoreTest, CliquePlusTail) {
  // A 5-clique with a pendant path: 4-core = the clique only.
  EdgeList g;
  g.num_vertices = 8;
  for (vid_t a = 0; a < 5; ++a) {
    for (vid_t b = a + 1; b < 5; ++b) g.edges.push_back({a, b, 1.0});
  }
  g.edges.push_back({4, 5, 1.0});
  g.edges.push_back({5, 6, 1.0});
  g.edges.push_back({6, 7, 1.0});
  EdgeCutPartitioner part(8, 2);
  auto frags = Partition(g, part);
  auto alive = RunKCore(frags, 4);
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(alive[v], 1) << v;
  for (vid_t v = 5; v < 8; ++v) EXPECT_EQ(alive[v], 0) << v;
}

TEST(KCoreTest, AgreesWithFlashPeeling) {
  // The PIE app counts multigraph degree (out + in); to compare against
  // FLASH's simple-graph peeling, canonicalize to a simple undirected
  // graph first (one record per {u, v}, no self-loops).
  EdgeList raw = TestGraph();
  std::set<std::pair<vid_t, vid_t>> seen;
  EdgeList g;
  g.num_vertices = raw.num_vertices;
  for (const RawEdge& e : raw.edges) {
    if (e.src == e.dst) continue;
    auto key = std::minmax(e.src, e.dst);
    if (seen.insert({key.first, key.second}).second) {
      g.edges.push_back({key.first, key.second, 1.0});
    }
  }
  EdgeCutPartitioner part(g.num_vertices, 3);
  auto frags = Partition(g, part);
  flash::FlashEngine flash_engine(g, 3);
  for (uint32_t k : {2u, 5u, 10u}) {
    auto pie = RunKCore(frags, k);
    auto fl = flash_engine.KCore(k);
    EXPECT_EQ(pie, fl) << "k=" << k;
  }
}

// -------------------------------------------------------------- Pregel

class PregelSssp : public PregelProgram<double, double> {
 public:
  explicit PregelSssp(vid_t source) : source_(source) {}

  double Init(vid_t v, const Fragment&) override {
    return v == source_ ? 0.0 : kUnreachedDist;
  }

  void Compute(PregelVertex<double, double>& vertex,
               std::span<const double> messages) override {
    double best = vertex.value();
    for (double m : messages) best = std::min(best, m);
    if (best < vertex.value() || vertex.superstep() == 0) {
      vertex.value() = best;
      if (best != kUnreachedDist) {
        const auto nbrs = vertex.out_neighbors();
        const auto weights = vertex.out_weights();
        for (size_t i = 0; i < nbrs.size(); ++i) {
          vertex.SendTo(nbrs[i], best + weights[i]);
        }
      }
    }
    vertex.VoteToHalt();
  }

 private:
  vid_t source_;
};

TEST(PregelTest, SsspMatchesReference) {
  EdgeList g = TestGraph();
  EdgeCutPartitioner part(g.num_vertices, 2);
  auto frags = Partition(g, part);
  auto got = RunPregel<double, double>(
      frags, [] { return std::make_unique<PregelSssp>(0); }, 1000);
  auto want = ReferenceSssp(g, 0);
  for (vid_t v = 0; v < g.num_vertices; ++v) {
    if (want[v] == kUnreachedDist) {
      EXPECT_EQ(got[v], kUnreachedDist);
    } else {
      EXPECT_NEAR(got[v], want[v], 1e-9);
    }
  }
}

/// Max-value propagation: classic Pregel example; exercises keep-alive
/// (vertices stay active until quiescent).
class PregelMax : public PregelProgram<uint32_t, uint32_t> {
 public:
  uint32_t Init(vid_t v, const Fragment&) override { return v * 7 % 101; }

  void Compute(PregelVertex<uint32_t, uint32_t>& vertex,
               std::span<const uint32_t> messages) override {
    uint32_t best = vertex.value();
    for (uint32_t m : messages) best = std::max(best, m);
    if (best > vertex.value() || vertex.superstep() == 0) {
      vertex.value() = best;
      vertex.SendToNeighbors(best);
    }
    vertex.VoteToHalt();
  }
};

TEST(PregelTest, MaxPropagationOnCycle) {
  EdgeList g;
  g.num_vertices = 10;
  for (vid_t v = 0; v < 10; ++v) g.edges.push_back({v, (v + 1) % 10, 1.0});
  EdgeCutPartitioner part(10, 2);
  auto frags = Partition(g, part);
  auto values = RunPregel<uint32_t, uint32_t>(
      frags, [] { return std::make_unique<PregelMax>(); }, 100);
  uint32_t expected = 0;
  for (vid_t v = 0; v < 10; ++v) expected = std::max(expected, v * 7 % 101);
  for (vid_t v = 0; v < 10; ++v) EXPECT_EQ(values[v], expected);
}

// --------------------------------------------------------------- FLASH

TEST(FlashTest, TriangleCountsOnKnownGraph) {
  // Triangle 0-1-2 plus an edge 2-3.
  EdgeList g;
  g.num_vertices = 4;
  g.edges = {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {2, 3, 1}};
  flash::FlashEngine engine(g, 2);
  auto counts = engine.TriangleCounts();
  EXPECT_EQ(counts, (std::vector<uint64_t>{1, 1, 1, 0}));
}

TEST(FlashTest, TriangleTotalMatchesBruteForce) {
  EdgeList g = datagen::GenerateUniform(200, 2000, 5);
  flash::FlashEngine engine(g, 3);
  auto counts = engine.TriangleCounts();
  // Brute force over undirected simple closure.
  std::vector<std::vector<uint8_t>> adj(200, std::vector<uint8_t>(200, 0));
  for (const RawEdge& e : g.edges) {
    if (e.src != e.dst) {
      adj[e.src][e.dst] = 1;
      adj[e.dst][e.src] = 1;
    }
  }
  uint64_t brute = 0;
  for (vid_t a = 0; a < 200; ++a) {
    for (vid_t b = a + 1; b < 200; ++b) {
      if (!adj[a][b]) continue;
      for (vid_t c = b + 1; c < 200; ++c) {
        if (adj[a][c] && adj[b][c]) ++brute;
      }
    }
  }
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  EXPECT_EQ(total, brute * 3);  // Each triangle counted at 3 corners.
}

TEST(FlashTest, CheckedVariantsStopOnDeadlineAndCancel) {
  EdgeList g = TestGraph();
  flash::FlashEngine engine(g, 2);

  flash::FlashOptions expired;
  expired.deadline = Deadline::Expired();
  auto kcore = engine.KCoreChecked(4, expired);
  ASSERT_FALSE(kcore.ok());
  EXPECT_EQ(kcore.status().code(), StatusCode::kDeadlineExceeded);

  CancellationToken token;
  token.Cancel();
  flash::FlashOptions cancelled;
  cancelled.cancel = &token;
  auto louvain = engine.LouvainCommunitiesChecked(10, cancelled);
  ASSERT_FALSE(louvain.ok());
  EXPECT_EQ(louvain.status().code(), StatusCode::kCancelled);

  // Infinite options match the unchecked wrappers bit-for-bit.
  auto checked = engine.KCoreChecked(3, flash::FlashOptions{});
  ASSERT_TRUE(checked.ok());
  EXPECT_EQ(checked.value(), engine.KCore(3));
}

TEST(FlashTest, LccBounds) {
  EdgeList g = TestGraph();
  flash::FlashEngine engine(g, 3);
  auto lcc = engine.Lcc();
  for (double x : lcc) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0 + 1e-12);
  }
}

TEST(FlashTest, LccOfTriangleIsOne) {
  EdgeList g;
  g.num_vertices = 3;
  g.edges = {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}};
  flash::FlashEngine engine(g, 1);
  auto lcc = engine.Lcc();
  for (double x : lcc) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(FlashTest, VertexAndEdgeMapPrimitives) {
  EdgeList g;
  g.num_vertices = 6;
  g.edges = {{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 4, 1}, {4, 5, 1}};
  flash::FlashEngine engine(g, 2);
  auto all = flash::VertexSubset::All(6);
  auto evens = engine.VertexMap(all, [](vid_t v) { return v % 2 == 0; });
  EXPECT_EQ(evens.size(), 3u);
  EXPECT_TRUE(evens.Contains(0));
  EXPECT_FALSE(evens.Contains(1));

  flash::VertexSubset start(6);
  start.Add(0);
  auto next = engine.EdgeMapSparse(start, [](vid_t, vid_t) { return true; });
  EXPECT_EQ(next.size(), 2u);
  EXPECT_TRUE(next.Contains(1));
  EXPECT_TRUE(next.Contains(2));
}

// --------------------------------------------------------------- Equity

TEST(EquityTest, PaperWorkedExample) {
  // Figure 6(b): Person C controls Company 1 with 0.8*0.6 + 0.8*0.3*0.7.
  // Vertices: 0 = Person A, 1 = Person C, 2 = Company1, 3 = Company2,
  // 4 = Company3.
  EdgeList g;
  g.num_vertices = 5;
  g.edges = {
      {0, 2, 0.10},  // A -> Company1 (minority stake).
      {1, 3, 0.80},  // C -> Company2.
      {3, 2, 0.60},  // Company2 -> Company1.
      {3, 4, 0.30},  // Company2 -> Company3.
      {4, 2, 0.70},  // Company3 -> Company1.
  };
  std::vector<uint8_t> is_person = {1, 1, 0, 0, 0};
  auto results = ComputeControllers(g, is_person);
  ASSERT_EQ(results.size(), 3u);  // Three companies.
  const ControlResult* company1 = nullptr;
  for (const auto& r : results) {
    if (r.company == 2) company1 = &r;
  }
  ASSERT_NE(company1, nullptr);
  EXPECT_EQ(company1->controller, 1u);  // Person C.
  EXPECT_NEAR(company1->share, 0.648, 1e-9);
}

TEST(EquityTest, NoControllerBelowThreshold) {
  EdgeList g;
  g.num_vertices = 3;
  g.edges = {{0, 2, 0.3}, {1, 2, 0.3}};
  std::vector<uint8_t> is_person = {1, 1, 0};
  auto results = ComputeControllers(g, is_person);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].controller, kInvalidVid);
}

TEST(EquityTest, DeepChainPropagates) {
  // Person 0 owns 100% through a 5-company chain: still the controller.
  EdgeList g;
  g.num_vertices = 6;
  for (vid_t v = 0; v < 5; ++v) g.edges.push_back({v, v + 1, 1.0});
  std::vector<uint8_t> is_person = {1, 0, 0, 0, 0, 0};
  auto results = ComputeControllers(g, is_person, 10);
  for (const auto& r : results) {
    EXPECT_EQ(r.controller, 0u) << "company " << r.company;
    EXPECT_NEAR(r.share, 1.0, 1e-9);
  }
}

TEST(FlashTest, LouvainSeparatesCliques) {
  // Two 5-cliques joined by one bridge: two communities, modularity far
  // above the singleton partition.
  EdgeList g;
  g.num_vertices = 10;
  for (vid_t a = 0; a < 5; ++a) {
    for (vid_t b = a + 1; b < 5; ++b) {
      g.edges.push_back({a, b, 1.0});
      g.edges.push_back({a + 5, b + 5, 1.0});
    }
  }
  g.edges.push_back({4, 5, 1.0});
  flash::FlashEngine engine(g, 2);
  auto communities = engine.LouvainCommunities();
  for (vid_t v = 1; v < 5; ++v) EXPECT_EQ(communities[v], communities[0]);
  for (vid_t v = 6; v < 10; ++v) EXPECT_EQ(communities[v], communities[5]);
  EXPECT_NE(communities[0], communities[5]);

  std::vector<uint32_t> singletons(10);
  for (vid_t v = 0; v < 10; ++v) singletons[v] = v;
  EXPECT_GT(engine.Modularity(communities),
            engine.Modularity(singletons) + 0.3);
}

TEST(FlashTest, LouvainImprovesModularityOnRandomGraph) {
  EdgeList g = datagen::GenerateUniform(300, 1200, 9);
  flash::FlashEngine engine(g, 2);
  auto communities = engine.LouvainCommunities();
  std::vector<uint32_t> singletons(300);
  for (vid_t v = 0; v < 300; ++v) singletons[v] = v;
  EXPECT_GE(engine.Modularity(communities), engine.Modularity(singletons));
}

// -------------------------------------------------------------- Ingress

TEST(IngressTest, IncrementalSsspMatchesFullRecompute) {
  EdgeList g = TestGraph();
  // Hold back 5% of edges as the update stream.
  const size_t keep = g.num_edges() * 95 / 100;
  std::vector<RawEdge> updates(g.edges.begin() + keep, g.edges.end());
  EdgeList initial = g;
  initial.edges.resize(keep);

  IngressSssp incremental(initial, 0);
  const size_t full_work = incremental.last_relaxations();
  for (size_t begin = 0; begin < updates.size(); begin += 100) {
    const size_t end = std::min(updates.size(), begin + 100);
    incremental.AddEdges(
        std::vector<RawEdge>(updates.begin() + begin, updates.begin() + end));
    // Memoization pays: each batch touches far less than the full run.
    EXPECT_LT(incremental.last_relaxations(), full_work);
  }
  auto want = ReferenceSssp(g, 0);
  const auto& got = incremental.distances();
  for (vid_t v = 0; v < g.num_vertices; ++v) {
    if (want[v] == kUnreachedDist) {
      EXPECT_EQ(got[v], std::numeric_limits<double>::max());
    } else {
      EXPECT_NEAR(got[v], want[v], 1e-9) << v;
    }
  }
}

TEST(IngressTest, IncrementalWccMergesComponents) {
  // Two chains; an inserted bridge merges their components incrementally.
  EdgeList g;
  g.num_vertices = 10;
  for (vid_t v = 0; v < 4; ++v) g.edges.push_back({v, v + 1, 1.0});
  for (vid_t v = 5; v < 9; ++v) g.edges.push_back({v, v + 1, 1.0});
  IngressWcc wcc(g);
  EXPECT_EQ(wcc.labels()[0], 0u);
  EXPECT_EQ(wcc.labels()[9], 5u);

  const size_t changed = wcc.AddEdges({{4, 5, 1.0}});
  EXPECT_EQ(changed, 5u);  // The whole second chain relabels.
  for (vid_t v = 0; v < 10; ++v) EXPECT_EQ(wcc.labels()[v], 0u) << v;
}

TEST(IngressTest, IncrementalWccMatchesUnionFind) {
  EdgeList g = TestGraph();
  const size_t keep = g.num_edges() / 2;
  std::vector<RawEdge> updates(g.edges.begin() + keep, g.edges.end());
  EdgeList initial = g;
  initial.edges.resize(keep);
  IngressWcc wcc(initial);
  wcc.AddEdges(updates);
  EXPECT_EQ(wcc.labels(), ReferenceWcc(g));
}

TEST(IngressTest, NoopBatchTouchesNothing) {
  EdgeList g;
  g.num_vertices = 3;
  g.edges = {{0, 1, 1.0}};
  IngressSssp sssp(g, 0);
  // Re-inserting a parallel edge with a worse weight changes nothing.
  EXPECT_EQ(sssp.AddEdges({{0, 1, 5.0}}), 0u);
  EXPECT_EQ(sssp.last_relaxations(), 0u);
}

// ------------------------------------------- Flush determinism (zero-copy)

/// Sends a deterministic pseudo-random workload (every (src, dst) channel,
/// mixed message sizes) into `mm` from the calling thread.
void SendDeterministicTraffic(MessageManager<uint64_t>* mm, partition_t nfrag,
                              uint64_t seed) {
  Rng rng(seed);
  for (partition_t src = 0; src < nfrag; ++src) {
    for (partition_t dst = 0; dst < nfrag; ++dst) {
      // Leave some channels empty so empty-payload elision is exercised.
      if ((src + dst) % 5 == 0) continue;
      const size_t n = 1 + rng.Uniform(64);
      for (size_t i = 0; i < n; ++i) {
        mm->Send(src, dst, static_cast<vid_t>(rng.Uniform(1 << 20)),
                 rng.Next());
      }
    }
  }
}

TEST(FlushDeterminismTest, ParallelShardsBitIdenticalToSerialReference) {
  // The parallel boundary must be a pure work split: for identical sends,
  // the frame set produced by per-worker FlushShard calls must be
  // bit-identical — per destination, src-ascending, same CRCs, same
  // payload bytes — to the serial single-caller Flush() reference.
  constexpr partition_t kFrags = 8;
  MessageManager<uint64_t> serial(kFrags, MessageMode::kAggregated);
  MessageManager<uint64_t> parallel(kFrags, MessageMode::kAggregated);
  SendDeterministicTraffic(&serial, kFrags, 1234);
  SendDeterministicTraffic(&parallel, kFrags, 1234);

  const size_t serial_traffic = serial.Flush();

  Barrier barrier(kFrags);
  std::atomic<size_t> parallel_traffic{0};
  ThreadPool pool(kFrags);
  for (partition_t fid = 0; fid < kFrags; ++fid) {
    pool.Submit([&, fid] {
      if (barrier.Await()) parallel.BeginFlush();
      barrier.Await();
      parallel.FlushShard(fid);
      if (barrier.Await()) {
        parallel_traffic.store(parallel.EndFlush(), std::memory_order_relaxed);
      }
      barrier.Await();
    });
  }
  pool.Wait();

  EXPECT_EQ(parallel_traffic.load(), serial_traffic);
  EXPECT_EQ(parallel.IncomingBytes(), serial.IncomingBytes());
  for (partition_t dst = 0; dst < kFrags; ++dst) {
    const auto want = serial.IncomingFrames(dst);
    const auto got = parallel.IncomingFrames(dst);
    ASSERT_EQ(got.size(), want.size()) << "dst " << dst;
    partition_t prev_src = 0;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].src, want[i].src);
      EXPECT_EQ(got[i].crc, want[i].crc);
      ASSERT_EQ(got[i].len, want[i].len);
      EXPECT_EQ(std::memcmp(got[i].data, want[i].data, got[i].len), 0)
          << "dst " << dst << " frame " << i;
      // Descriptors are published src-ascending, the order Receive() and
      // the retransmit rebuild both rely on.
      if (i > 0) {
        EXPECT_GT(got[i].src, prev_src);
      }
      prev_src = got[i].src;
      // And each CRC is genuinely the payload's checksum, not a stale copy.
      EXPECT_EQ(Crc32(got[i].data, got[i].len), got[i].crc);
    }
  }

  // Both deliver the identical message sequence.
  for (partition_t fid = 0; fid < kFrags; ++fid) {
    std::vector<std::pair<vid_t, uint64_t>> from_serial, from_parallel;
    ASSERT_TRUE(serial
                    .Receive(fid, [&](vid_t t, const uint64_t& m) {
                      from_serial.push_back({t, m});
                    })
                    .ok());
    ASSERT_TRUE(parallel
                    .Receive(fid, [&](vid_t t, const uint64_t& m) {
                      from_parallel.push_back({t, m});
                    })
                    .ok());
    EXPECT_EQ(from_parallel, from_serial) << "fragment " << fid;
  }
  EXPECT_EQ(serial.retransmits(), 0u);
  EXPECT_EQ(parallel.retransmits(), 0u);
}

// ------------------------------------------------------ MsgCodec bounds

// Every codec must reject a short read instead of reading past the buffer:
// a truncated wire buffer is how a lost/partial channel write manifests,
// and Receive() surfaces these decode failures as kDataLoss.

TEST(MsgCodecTest, DoubleShortReadFails) {
  std::vector<uint8_t> buf;
  MsgCodec<double>::Encode(&buf, 3.25);
  ASSERT_EQ(buf.size(), 8u);
  double out = 0.0;
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    EXPECT_FALSE(MsgCodec<double>::Decode(buf.data(), cut, &pos, &out))
        << "cut=" << cut;
    EXPECT_EQ(pos, 0u) << "cut=" << cut;
  }
  size_t pos = 0;
  ASSERT_TRUE(MsgCodec<double>::Decode(buf.data(), buf.size(), &pos, &out));
  EXPECT_EQ(out, 3.25);
}

TEST(MsgCodecTest, Uint32TruncatedVarintFails) {
  std::vector<uint8_t> buf;
  MsgCodec<uint32_t>::Encode(&buf, 1u << 30);  // Multi-byte varint.
  ASSERT_GT(buf.size(), 1u);
  uint32_t out = 0;
  size_t pos = 0;
  EXPECT_FALSE(
      MsgCodec<uint32_t>::Decode(buf.data(), buf.size() - 1, &pos, &out));
}

TEST(MsgCodecTest, Uint32OverflowingVarintFails) {
  // A varint is self-delimiting, so a CRC-valid payload can still carry a
  // value wider than uint32. Truncating it would deliver a silently wrong
  // vertex id; the codec must reject instead.
  for (const uint64_t wide :
       {uint64_t{1} << 32, (uint64_t{1} << 32) + 5, UINT64_MAX}) {
    std::vector<uint8_t> buf;
    PutVarint64(&buf, wide);
    uint32_t out = 0;
    size_t pos = 0;
    EXPECT_FALSE(MsgCodec<uint32_t>::Decode(buf.data(), buf.size(), &pos, &out))
        << wide;
  }
  // The boundary value still decodes.
  std::vector<uint8_t> buf;
  PutVarint64(&buf, (uint64_t{1} << 32) - 1);
  uint32_t out = 0;
  size_t pos = 0;
  ASSERT_TRUE(MsgCodec<uint32_t>::Decode(buf.data(), buf.size(), &pos, &out));
  EXPECT_EQ(out, std::numeric_limits<uint32_t>::max());
}

template <typename MSG>
void ExpectBulkEncodeMatches(const MSG& value) {
  static_assert(BulkEncodableMsg<MSG>);
  uint8_t scratch[MsgCodec<MSG>::kMaxWireSize];
  const size_t n = MsgCodec<MSG>::EncodeTo(scratch, value);
  ASSERT_LE(n, MsgCodec<MSG>::kMaxWireSize);
  std::vector<uint8_t> buf;
  MsgCodec<MSG>::Encode(&buf, value);
  ASSERT_EQ(buf.size(), n);
  EXPECT_EQ(std::memcmp(scratch, buf.data(), n), 0);
  MSG out{};
  size_t pos = 0;
  ASSERT_TRUE(MsgCodec<MSG>::Decode(scratch, n, &pos, &out));
  EXPECT_EQ(out, value);
  EXPECT_EQ(pos, n);
}

TEST(MsgCodecTest, BulkEncodeToMatchesVectorEncode) {
  // Send() assembles messages with EncodeTo into a stack scratch buffer;
  // the wire bytes must be identical to the vector-append Encode path or
  // mixed senders would produce undecodable streams.
  ExpectBulkEncodeMatches(3.25);
  ExpectBulkEncodeMatches(-0.0);
  ExpectBulkEncodeMatches(uint32_t{0});
  ExpectBulkEncodeMatches(uint32_t{1} << 30);
  ExpectBulkEncodeMatches(uint64_t{127});
  ExpectBulkEncodeMatches(UINT64_MAX);
  ExpectBulkEncodeMatches(std::pair<double, double>{1.5, -2.5});
}

TEST(MsgCodecTest, AdjacencyCountExceedsPayloadFails) {
  // Header claims 5 deltas but only 2 follow: decode must fail cleanly
  // after consuming what exists, not fabricate vertices.
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 5);
  PutVarintSigned(&buf, 10);
  PutVarintSigned(&buf, 3);
  std::vector<vid_t> out;
  size_t pos = 0;
  EXPECT_FALSE(
      MsgCodec<std::vector<vid_t>>::Decode(buf.data(), buf.size(), &pos, &out));
}

TEST(MsgCodecTest, AdjacencyTruncatedCountFails) {
  std::vector<uint8_t> empty;
  std::vector<vid_t> out;
  size_t pos = 0;
  EXPECT_FALSE(
      MsgCodec<std::vector<vid_t>>::Decode(empty.data(), 0, &pos, &out));
}

TEST(MsgCodecTest, AdjacencyHugeCountRejectedBeforeAllocating) {
  // A wire-controlled count must not drive reserve(): a frame claiming
  // 2^60 neighbors with a two-byte payload is an OOM, not a loop that
  // fails on element 3. The decode must reject it up front.
  std::vector<uint8_t> buf;
  PutVarint64(&buf, uint64_t{1} << 60);
  PutVarintSigned(&buf, 1);
  PutVarintSigned(&buf, 1);
  std::vector<vid_t> out;
  size_t pos = 0;
  EXPECT_FALSE(
      MsgCodec<std::vector<vid_t>>::Decode(buf.data(), buf.size(), &pos, &out));
  EXPECT_EQ(out.capacity(), 0u);
}

TEST(MsgCodecTest, AdjacencyRoundTripsWithDeltas) {
  const std::vector<vid_t> adj = {3, 7, 8, 100, 1000};
  std::vector<uint8_t> buf;
  MsgCodec<std::vector<vid_t>>::Encode(&buf, adj);
  std::vector<vid_t> out;
  size_t pos = 0;
  ASSERT_TRUE(
      MsgCodec<std::vector<vid_t>>::Decode(buf.data(), buf.size(), &pos, &out));
  EXPECT_EQ(out, adj);
  EXPECT_EQ(pos, buf.size());
}

TEST(MsgCodecTest, PairShortReadFailsOnSecondHalf) {
  using DPair = std::pair<double, double>;
  std::vector<uint8_t> buf;
  MsgCodec<DPair>::Encode(&buf, {1.5, -2.5});
  ASSERT_EQ(buf.size(), 16u);
  DPair out;
  size_t pos = 0;
  // 12 bytes: first double decodes, second must fail the whole decode.
  EXPECT_FALSE(MsgCodec<DPair>::Decode(buf.data(), 12, &pos, &out));
  pos = 0;
  ASSERT_TRUE(MsgCodec<DPair>::Decode(buf.data(), buf.size(), &pos, &out));
  EXPECT_EQ(out.first, 1.5);
  EXPECT_EQ(out.second, -2.5);
}

}  // namespace
}  // namespace flex::grape
