// Fixture: blocking operations while a mutex is held. Drain() submits to
// a thread pool under mu_; WaitWrong() waits on a condvar whose guard is
// a different mutex than the one held. WaitRight() is the sanctioned
// pattern (waiting releases the same mutex the waiter holds) and must not
// be reported.
#include "common/mutex.h"
#include "common/thread_pool.h"

namespace flex {

class Dispatcher {
 public:
  void Drain(ThreadPool* pool) {
    MutexLock lock(&mu_);
    pool->Submit([] {});
  }

  void WaitWrong() {
    MutexLock lock(&mu_);
    other_cv_.Wait(&other_mu_);
  }

  void WaitRight() {
    MutexLock lock(&mu_);
    cv_.Wait(&mu_);
  }

 private:
  Mutex mu_;
  Mutex other_mu_;
  CondVar cv_;
  CondVar other_cv_;
};

}  // namespace flex
