// Fixture registry: "known.site" is used by probe.cc, "dead.site" is
// registered but never used (a dead entry the drift rule must flag).
#ifndef FIXTURE_FAULT_H_
#define FIXTURE_FAULT_H_

inline constexpr const char* kAllFaultSites[] = {
    "dead.site",
    "known.site",
};

#endif  // FIXTURE_FAULT_H_
