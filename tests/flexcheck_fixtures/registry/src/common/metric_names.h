// Fixture registry: kKnownTotal is used by probe.cc, kDeadTotal is
// declared but never used.
#ifndef FIXTURE_METRIC_NAMES_H_
#define FIXTURE_METRIC_NAMES_H_

namespace metrics {

inline constexpr char kKnownTotal[] = "fixture_known_total";
inline constexpr char kDeadTotal[] = "fixture_dead_total";

}  // namespace metrics

#endif  // FIXTURE_METRIC_NAMES_H_
