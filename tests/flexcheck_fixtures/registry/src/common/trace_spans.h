// Fixture span table: "known" is emitted with the right category,
// "dead" is never emitted, and "shard[" is a dynamic-suffix prefix
// family.
#ifndef FIXTURE_TRACE_SPANS_H_
#define FIXTURE_TRACE_SPANS_H_

struct SpanSpec {
  const char* name;
  const char* category;
  bool prefix;
};

inline constexpr SpanSpec kSpanTable[] = {
    {"dead", "engine", false},
    {"known", "engine", false},
    {"shard[", "engine", true},
};

#endif  // FIXTURE_TRACE_SPANS_H_
