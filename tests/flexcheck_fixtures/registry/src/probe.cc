// Fixture: one clean use of each registry plus every drift shape —
// an unregistered fault site, an undeclared metric constant, a raw
// metric-name literal, an unknown span, and a wrong span category.
// Together with the registries' dead entries this exercises both
// directions of the registry-drift rule.
#include "common/fault.h"
#include "common/metric_names.h"

namespace flex {

void Probe(trace::Trace* trace) {
  if (FLEX_FAULT_POINT("known.site")) {
    return;
  }
  if (FLEX_FAULT_POINT("mystery.site")) {
    return;
  }
  FLEX_COUNTER_INC(metrics::kKnownTotal);
  FLEX_COUNTER_INC(metrics::kMissingTotal);
  FLEX_COUNTER_ADD("fixture_raw_literal", 1);
  trace->BeginSpan("known", "engine");
  trace->BeginSpan("shard[" + std::to_string(0), "engine");
  trace->BeginSpan("mystery", "engine");
  trace->BeginSpan("known", "storage");
}

}  // namespace flex
