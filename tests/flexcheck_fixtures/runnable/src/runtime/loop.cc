// Fixture: DrainForever() spins an unbounded loop with a long body and no
// deadline/cancellation poll — the exact shape runnable-coverage exists to
// catch. DrainPolled() is the same loop with a CheckRunnable call at the
// top of each iteration and must not be reported.
#include "common/deadline.h"

namespace flex {

int DrainForever(int* queue, int n) {
  int processed = 0;
  int idle_rounds = 0;
  for (;;) {
    int batch = 0;
    for (int i = 0; i < n; ++i) {
      if (queue[i] > 0) {
        --queue[i];
        ++batch;
      }
    }
    processed += batch;
    if (batch == 0) {
      ++idle_rounds;
    } else {
      idle_rounds = 0;
    }
    if (idle_rounds > 1000000) {
      break;
    }
  }
  return processed;
}

int DrainPolled(const Deadline& deadline, int* queue, int n) {
  int processed = 0;
  for (;;) {
    Status st = CheckRunnable(deadline, nullptr, "fixture.drain");
    if (!st.ok()) {
      break;
    }
    int batch = 0;
    for (int i = 0; i < n; ++i) {
      if (queue[i] > 0) {
        --queue[i];
        ++batch;
      }
    }
    processed += batch;
    if (batch == 0) {
      break;
    }
  }
  return processed;
}

}  // namespace flex
