// Fixture: two flex::Mutex members acquired in opposite orders by two
// functions in the same TU. flexcheck must report a lock-order cycle
// mu_a_ -> mu_b_ -> mu_a_.
#include "common/mutex.h"

namespace flex {

class Inventory {
 public:
  void Deposit() {
    MutexLock a(&mu_a_);
    MutexLock b(&mu_b_);
    ++balance_;
  }

  void Withdraw() {
    MutexLock b(&mu_b_);
    MutexLock a(&mu_a_);
    --balance_;
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
  int balance_ = 0;
};

}  // namespace flex
