// Fixture: a well-behaved file — consistent single-mutex locking, a
// bounded loop, no registry uses, no waivers. flexcheck must report
// nothing here.
#include "common/mutex.h"

namespace flex {

class Counter {
 public:
  void Add(int delta) {
    MutexLock lock(&mu_);
    value_ += delta;
  }

  int Sum(const int* values, int n) {
    int total = 0;
    for (int i = 0; i < n; ++i) {
      total += values[i];
    }
    MutexLock lock(&mu_);
    value_ += total;
    return value_;
  }

 private:
  Mutex mu_;
  int value_ = 0;
};

}  // namespace flex
