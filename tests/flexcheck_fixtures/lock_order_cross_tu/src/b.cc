// Fixture, TU 2 of 2: TouchMap() acquires map_mu_ (reached from
// Publish() in a.cc while reg_mu_ is held); Reindex() orders
// map_mu_ -> reg_mu_ directly. The cycle spans both files.
#include "common/mutex.h"

namespace flex {

class Registry;

void TouchMap(Registry* r);
void Reindex(Registry* r);

void TouchMap(Registry* r) {
  MutexLock lock(&r->map_mu_);
  (void)r;
}

void Reindex(Registry* r) {
  MutexLock map(&r->map_mu_);
  MutexLock reg(&r->reg_mu_);
  (void)r;
}

}  // namespace flex
