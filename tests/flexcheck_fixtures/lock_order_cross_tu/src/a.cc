// Fixture, TU 1 of 2: Publish() holds reg_mu_ and calls TouchMap(),
// which lives in b.cc and acquires map_mu_. Together with b.cc's direct
// map_mu_ -> reg_mu_ ordering this closes a cycle that no single TU
// exhibits on its own.
#include "common/mutex.h"

namespace flex {

class Registry {
 public:
  void Publish();

  Mutex reg_mu_;
  Mutex map_mu_;
  int version_ = 0;
};

void TouchMap(Registry* r);

void Registry::Publish() {
  MutexLock lock(&reg_mu_);
  ++version_;
  TouchMap(this);
}

}  // namespace flex
