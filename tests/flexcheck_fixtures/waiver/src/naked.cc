// Fixture: a naked allow() marker (no justification anywhere nearby) must
// be reported; the justified forms — same-line reason, or a preceding
// pure-comment line — must not.
#include "common/mutex.h"

namespace flex {

int Naked(int* p) {
  // flexlint: allow(lock-order)
  return *p;
}

int JustifiedInline(int* p) {
  // flexlint: allow(lock-order): ordering is pinned by the caller here.
  return *p;
}

int JustifiedAbove(int* p) {
  // The caller serializes access, so acquisition order cannot matter.
  // flexlint: allow(lock-order)
  return *p;
}

}  // namespace flex
