// Logging verification net: the injectable sink makes emitted lines
// observable, so level filtering, FLEX_LOG_LEVEL parsing (including
// garbage), formatting and the FLEX_CHECK abort contract are all asserted
// directly instead of eyeballed on stderr.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace flex {
namespace {

using internal_logging::LogLevel;
using internal_logging::MinLogLevel;
using internal_logging::ParseLogLevel;
using internal_logging::ResetMinLogLevelForTesting;
using internal_logging::SetMinLogLevelForTesting;
using internal_logging::SetSinkForTesting;

/// Captures every emitted line for the duration of one test, restoring
/// stderr and the env-derived level on the way out.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetSinkForTesting([this](LogLevel level, const std::string& line) {
      captured_.emplace_back(level, line);
    });
  }
  void TearDown() override {
    SetSinkForTesting(nullptr);
    ResetMinLogLevelForTesting();
    unsetenv("FLEX_LOG_LEVEL");
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, SinkReceivesFormattedLine) {
  SetMinLogLevelForTesting(LogLevel::kInfo);
  FLEX_LOG(Info) << "observability " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  // "[I logging_test.cc:NN] observability 42"
  EXPECT_NE(captured_[0].second.find("[I logging_test.cc:"),
            std::string::npos);
  EXPECT_NE(captured_[0].second.find("observability 42"), std::string::npos);
}

TEST_F(LoggingTest, LinesBelowMinLevelAreSuppressed) {
  SetMinLogLevelForTesting(LogLevel::kWarning);
  FLEX_LOG(Debug) << "dropped";
  FLEX_LOG(Info) << "dropped";
  FLEX_LOG(Warning) << "kept-warning";
  FLEX_LOG(Error) << "kept-error";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].first, LogLevel::kWarning);
  EXPECT_EQ(captured_[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, DebugLevelEmitsEverything) {
  SetMinLogLevelForTesting(LogLevel::kDebug);
  FLEX_LOG(Debug) << "d";
  FLEX_LOG(Info) << "i";
  EXPECT_EQ(captured_.size(), 2u);
}

TEST_F(LoggingTest, ParseLogLevelAcceptsExactlyTheFiveDigits) {
  EXPECT_EQ(ParseLogLevel("0", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("1", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("2", LogLevel::kInfo), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("3", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("4", LogLevel::kInfo), LogLevel::kFatal);
}

TEST_F(LoggingTest, ParseLogLevelRejectsGarbage) {
  EXPECT_EQ(ParseLogLevel(nullptr, LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("5", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("9", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("-1", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("22", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("abc", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("1 ", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel(" 1", LogLevel::kWarning), LogLevel::kWarning);
}

TEST_F(LoggingTest, EnvironmentVariableDrivesMinLevel) {
  setenv("FLEX_LOG_LEVEL", "3", /*overwrite=*/1);
  ResetMinLogLevelForTesting();  // Drop the cache; next read hits the env.
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  FLEX_LOG(Warning) << "dropped";
  FLEX_LOG(Error) << "kept";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kError);

  setenv("FLEX_LOG_LEVEL", "garbage", /*overwrite=*/1);
  ResetMinLogLevelForTesting();
  EXPECT_EQ(MinLogLevel(), LogLevel::kInfo);  // Falls back to the default.
}

TEST_F(LoggingTest, FatalEmitsEvenWhenFilteredOut) {
  // kFatal always reaches the sink (and then aborts) regardless of the
  // minimum level — verified via the death test below; here we only check
  // the level ordering used by the filter.
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kFatal));
}

// Death tests run outside the sink fixture: EXPECT_DEATH matches the
// child's *stderr*, so the fatal line must flow through the default sink.
TEST(LoggingDeathTest, FailedCheckLogsAndAborts) {
  EXPECT_DEATH(FLEX_CHECK(1 + 1 == 3), "Check failed: 1 \\+ 1 == 3");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH(FLEX_LOG(Fatal) << "unrecoverable", "unrecoverable");
}

}  // namespace
}  // namespace flex
