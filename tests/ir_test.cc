#include <gtest/gtest.h>

#include "lang/lexer.h"
#include "optimizer/optimizer.h"
#include "query/interpreter.h"
#include "storage/vineyard/vineyard_store.h"

namespace flex::ir {
namespace {

/// Single-vertex graph so property expressions have something to chew on.
std::unique_ptr<storage::VineyardStore> TinyStore() {
  PropertyGraphData data;
  label_t v = data.schema
                  .AddVertexLabel("V", {{"x", PropertyType::kInt64},
                                        {"name", PropertyType::kString}})
                  .value();
  data.schema.AddEdgeLabel("E", v, v, {}).value();
  data.AddVertex(v, 7, {PropertyValue(int64_t{5}), PropertyValue("n7")});
  data.AddVertex(v, 8, {PropertyValue(int64_t{9}), PropertyValue("n8")});
  data.AddEdge(0, 7, 8, {});
  return storage::VineyardStore::Build(data).value();
}

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = TinyStore();
    graph_ = store_->GetGrinHandle();
    row_.push_back(VertexRef{store_->FindVertex(0, 7).value()});
  }
  PropertyValue Eval(const ExprPtr& e,
                     std::vector<PropertyValue> params = {}) {
    return e->Eval(row_, *graph_, params);
  }

  std::unique_ptr<storage::VineyardStore> store_;
  std::unique_ptr<grin::GrinGraph> graph_;
  Row row_;
};

TEST_F(ExprTest, ConstParamColumnProperty) {
  EXPECT_EQ(Eval(Expr::Const(PropertyValue(3))).AsInt64(), 3);
  EXPECT_EQ(Eval(Expr::Param(0), {PropertyValue("p")}).AsString(), "p");
  EXPECT_EQ(Eval(Expr::VertexId(0)).AsInt64(), 7);
  EXPECT_EQ(Eval(Expr::Property(0, "x")).AsInt64(), 5);
  EXPECT_EQ(Eval(Expr::Property(0, "name")).AsString(), "n7");
  EXPECT_EQ(Eval(Expr::LabelName(0)).AsString(), "V");
  // Unknown property degrades to null, not a crash.
  EXPECT_TRUE(Eval(Expr::Property(0, "missing")).is_empty());
}

TEST_F(ExprTest, ArithmeticStaysIntegralWhenPossible) {
  auto add = Expr::Binary(BinOp::kAdd, Expr::Const(PropertyValue(2)),
                          Expr::Const(PropertyValue(3)));
  EXPECT_EQ(Eval(add).type(), PropertyType::kInt64);
  EXPECT_EQ(Eval(add).AsInt64(), 5);
  auto mixed = Expr::Binary(BinOp::kMul, Expr::Const(PropertyValue(2)),
                            Expr::Const(PropertyValue(1.5)));
  EXPECT_EQ(Eval(mixed).type(), PropertyType::kDouble);
  EXPECT_DOUBLE_EQ(Eval(mixed).AsDouble(), 3.0);
  // Division by zero is null, not UB.
  auto div0 = Expr::Binary(BinOp::kDiv, Expr::Const(PropertyValue(1)),
                           Expr::Const(PropertyValue(0)));
  EXPECT_TRUE(Eval(div0).is_empty());
}

TEST_F(ExprTest, BooleanConnectivesAndIn) {
  auto t = Expr::Const(PropertyValue(true));
  auto f = Expr::Const(PropertyValue(false));
  EXPECT_TRUE(Eval(Expr::Binary(BinOp::kOr, t->Clone(), f->Clone())).AsBool());
  EXPECT_FALSE(
      Eval(Expr::Binary(BinOp::kAnd, t->Clone(), f->Clone())).AsBool());
  EXPECT_TRUE(Eval(Expr::Not(f->Clone())).AsBool());
  auto in = Expr::In(Expr::Property(0, "x"),
                     {PropertyValue(1), PropertyValue(5)});
  EXPECT_TRUE(Eval(in).AsBool());
  auto not_in = Expr::In(Expr::Property(0, "x"), {PropertyValue(1)});
  EXPECT_FALSE(Eval(not_in).AsBool());
}

TEST_F(ExprTest, CloneIsDeepAndRemapRewrites) {
  auto original = Expr::Binary(BinOp::kEq, Expr::Property(0, "x"),
                               Expr::Const(PropertyValue(5)));
  auto copy = original->Clone();
  copy->RemapColumns({3});
  std::vector<size_t> orig_cols, copy_cols;
  original->CollectColumns(&orig_cols);
  copy->CollectColumns(&copy_cols);
  EXPECT_EQ(orig_cols, (std::vector<size_t>{0}));
  EXPECT_EQ(copy_cols, (std::vector<size_t>{3}));
}

TEST_F(ExprTest, FindIdEqualityDetection) {
  ExprPtr value;
  // id(col0) == 7 inside a conjunction, either operand order.
  auto direct = Expr::Binary(BinOp::kEq, Expr::VertexId(0),
                             Expr::Const(PropertyValue(7)));
  EXPECT_TRUE(direct->FindIdEquality(0, &value));
  EXPECT_FALSE(direct->FindIdEquality(1, &value));
  auto flipped = Expr::Binary(BinOp::kEq, Expr::Param(0), Expr::VertexId(0));
  EXPECT_TRUE(flipped->FindIdEquality(0, &value));
  auto conj = Expr::Binary(
      BinOp::kAnd,
      Expr::Binary(BinOp::kGt, Expr::Property(0, "x"),
                   Expr::Const(PropertyValue(1))),
      Expr::Binary(BinOp::kEq, Expr::VertexId(0),
                   Expr::Const(PropertyValue(7))));
  EXPECT_TRUE(conj->FindIdEquality(0, &value));
  // Property equality is not an id equality.
  auto prop_eq = Expr::Binary(BinOp::kEq, Expr::Property(0, "x"),
                              Expr::Const(PropertyValue(5)));
  EXPECT_FALSE(prop_eq->FindIdEquality(0, &value));
}

// ------------------------------------------------------------------ Plan

TEST(PlanBuilderTest, TracksAliasesThroughReshapes) {
  PlanBuilder builder;
  const size_t a = builder.Scan("a", 0);
  const size_t e = builder.ExpandEdge(a, 0, Direction::kOut, "r");
  const size_t b = builder.GetVertex(e, a, "b");
  EXPECT_EQ(builder.FindAlias("a"), a);
  EXPECT_EQ(builder.FindAlias("r"), e);
  EXPECT_EQ(builder.FindAlias("b"), b);
  EXPECT_EQ(builder.FindAlias("zzz"), PlanBuilder::kNoColumn);

  std::vector<ExprPtr> exprs;
  exprs.push_back(Expr::Column(b));
  builder.Project(std::move(exprs), {"out"});
  EXPECT_EQ(builder.FindAlias("out"), 0u);
  EXPECT_EQ(builder.FindAlias("a"), PlanBuilder::kNoColumn);

  Plan plan = builder.Build();
  EXPECT_EQ(plan.columns, (std::vector<std::string>{"out"}));
  EXPECT_EQ(plan.ops.size(), 4u);
  EXPECT_NE(plan.ToString().find("SCAN(a)"), std::string::npos);
}

TEST(PlanTest, CloneIsIndependent) {
  PlanBuilder builder;
  builder.Scan("a", 0, Expr::Binary(BinOp::kEq, Expr::VertexId(0),
                                    Expr::Const(PropertyValue(1))));
  Plan plan = builder.Build();
  Plan copy = plan.Clone();
  copy.ops[0].alias = "changed";
  EXPECT_EQ(plan.ops[0].alias, "a");
  EXPECT_NE(copy.ops[0].predicate.get(), plan.ops[0].predicate.get());
}

// ------------------------------------------------------------- Optimizer

TEST(OptimizerUnitTest, LimitPushdownMergesIntoOrder) {
  PlanBuilder builder;
  builder.Scan("a", 0);
  std::vector<ExprPtr> keys;
  keys.push_back(Expr::VertexId(0));
  builder.Order(std::move(keys), {true});
  builder.Limit(5);
  Plan plan = optimizer::Optimize(builder.Build(), nullptr);
  ASSERT_EQ(plan.ops.size(), 2u);
  EXPECT_EQ(plan.ops[1].kind, OpKind::kOrder);
  EXPECT_EQ(plan.ops[1].limit, 5u);
}

TEST(OptimizerUnitTest, IndexScanRequiresIdEquality) {
  PlanBuilder with_id;
  with_id.Scan("a", 0);
  with_id.Select(Expr::Binary(BinOp::kEq, Expr::VertexId(0),
                              Expr::Const(PropertyValue(1))));
  const Plan id_logical = with_id.Build();  // Build() consumes the builder.
  Plan indexed = optimizer::Optimize(id_logical, nullptr);
  ASSERT_EQ(indexed.ops[0].kind, OpKind::kScan);
  EXPECT_NE(indexed.ops[0].id_lookup, nullptr);

  PlanBuilder with_prop;
  with_prop.Scan("a", 0);
  with_prop.Select(Expr::Binary(BinOp::kGt, Expr::Property(0, "x"),
                                Expr::Const(PropertyValue(1))));
  Plan scanned = optimizer::Optimize(with_prop.Build(), nullptr);
  EXPECT_EQ(scanned.ops[0].id_lookup, nullptr);

  optimizer::OptimizerOptions off;
  off.index_scan = false;
  Plan disabled = optimizer::Optimize(id_logical, nullptr, off);
  ASSERT_FALSE(disabled.ops.empty());
  EXPECT_EQ(disabled.ops[0].id_lookup, nullptr);
}

TEST(OptimizerUnitTest, FilterPushStopsAtReshapes) {
  // SELECT after a GROUP must not be pushed into ops before the GROUP.
  PlanBuilder builder;
  builder.Scan("a", 0);
  std::vector<AggSpec> aggs;
  AggSpec count;
  count.fn = AggSpec::Fn::kCount;
  count.name = "n";
  aggs.push_back(std::move(count));
  std::vector<ExprPtr> keys;
  keys.push_back(Expr::Column(0));
  builder.Group(std::move(keys), {"a"}, std::move(aggs));
  builder.Select(Expr::Binary(BinOp::kGt, Expr::Column(1),
                              Expr::Const(PropertyValue(1))));
  Plan plan = optimizer::Optimize(builder.Build(), nullptr);
  // The select survives (post-aggregation filters cannot move).
  bool has_select = false;
  for (const auto& op : plan.ops) has_select |= op.kind == OpKind::kSelect;
  EXPECT_TRUE(has_select);
  EXPECT_EQ(plan.ops[0].predicate, nullptr);
}

// ----------------------------------------------------------------- Lexer

TEST(LexerTest, TokenKindsAndMultiCharPunct) {
  auto tokens =
      lang::Tokenize("MATCH (a)-[:E]->(b) WHERE a.x <= 3.5 AND b <> 'hi' "
                     "/* note */ RETURN $0")
          .value();
  std::vector<std::string> punct;
  int idents = 0, ints = 0, floats = 0, strings = 0, params = 0;
  for (const auto& t : tokens) {
    switch (t.kind) {
      case lang::TokKind::kIdent:
        ++idents;
        break;
      case lang::TokKind::kInt:
        ++ints;
        break;
      case lang::TokKind::kFloat:
        ++floats;
        break;
      case lang::TokKind::kString:
        ++strings;
        break;
      case lang::TokKind::kParam:
        ++params;
        break;
      case lang::TokKind::kPunct:
        punct.push_back(t.text);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(floats, 1);
  EXPECT_EQ(strings, 1);
  EXPECT_EQ(params, 1);
  EXPECT_NE(std::find(punct.begin(), punct.end(), "->"), punct.end());
  EXPECT_NE(std::find(punct.begin(), punct.end(), "<="), punct.end());
  EXPECT_NE(std::find(punct.begin(), punct.end(), "<>"), punct.end());
}

TEST(LexerTest, ErrorsOnBrokenInput) {
  EXPECT_EQ(lang::Tokenize("'unterminated").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(lang::Tokenize("/* never closed").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(lang::Tokenize("$x").status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------- columnar batches

TEST(BatchTest, TypedAppendsKeepColumnsTyped) {
  Column c;
  c.AppendVertex(3);
  c.AppendVertex(7);
  EXPECT_EQ(c.kind(), Column::Kind::kVertex);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.vids()[1], 7u);
  EXPECT_TRUE(c.IsVertexAt(0));
  EXPECT_EQ(c.VertexAt(1), 7u);
  EXPECT_EQ(c.EdgeAt(0), nullptr);

  Column e;
  e.AppendEdge(EdgeRef{/*label=*/0, /*eid=*/5, /*src=*/1, /*dst=*/2});
  EXPECT_EQ(e.kind(), Column::Kind::kEdge);
  ASSERT_NE(e.EdgeAt(0), nullptr);
  EXPECT_EQ(e.EdgeAt(0)->dst, 2u);
}

TEST(BatchTest, MixedAppendPromotesToBoxed) {
  Column c;
  c.AppendVertex(3);
  c.AppendValue(PropertyValue(int64_t{42}));  // Kind mismatch: promote.
  EXPECT_EQ(c.kind(), Column::Kind::kBoxed);
  ASSERT_EQ(c.size(), 2u);
  // Per-row views still answer correctly after promotion.
  EXPECT_TRUE(c.IsVertexAt(0));
  EXPECT_EQ(c.VertexAt(0), 3u);
  EXPECT_TRUE(c.IsValueAt(1));
  EXPECT_EQ(c.ValueAt(1).AsInt64(), 42);
}

TEST(BatchTest, PerRowViewsMirrorRowRepresentation) {
  // HashAt/ToStringAt are the batched hash/render paths; they must agree
  // with the row path's EntryHash/EntryToString for every entry kind.
  Column c;
  c.AppendVertex(9);
  c.AppendEdge(EdgeRef{0, 1, 2, 3});
  c.AppendValue(PropertyValue("abc"));
  c.AppendValue(PropertyValue(2.5));
  for (size_t i = 0; i < c.size(); ++i) {
    const Entry boxed = c.EntryAt(i);
    EXPECT_EQ(c.HashAt(i), EntryHash(boxed)) << "row " << i;
    EXPECT_EQ(c.ToStringAt(i), EntryToString(boxed)) << "row " << i;
  }
}

TEST(BatchTest, GatherFromCompactsSelectedRows) {
  Column src;
  for (vid_t v = 0; v < 8; ++v) src.AppendVertex(v * 10);
  Column dst;
  const std::vector<uint32_t> rows = {1, 4, 6};
  dst.GatherFrom(src, rows);
  EXPECT_EQ(dst.kind(), Column::Kind::kVertex);
  ASSERT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.VertexAt(0), 10u);
  EXPECT_EQ(dst.VertexAt(1), 40u);
  EXPECT_EQ(dst.VertexAt(2), 60u);
}

TEST(BatchTest, SelectionRefinesWithoutCopying) {
  Batch b;
  Column c;
  for (vid_t v = 0; v < 5; ++v) c.AppendVertex(v);
  b.AddColumn(std::move(c));
  b.SelectAll();
  EXPECT_EQ(b.NumRows(), 5u);
  EXPECT_EQ(b.NumSelected(), 5u);
  b.SetSelection({0, 2, 4});
  EXPECT_EQ(b.NumRows(), 5u);       // Physical rows untouched...
  EXPECT_EQ(b.NumSelected(), 3u);   // ...only the view narrowed.
  EXPECT_EQ(b.column(0).VertexAt(b.selection()[1]), 2u);
}

TEST(BatchTest, RowsRoundTripThroughBatches) {
  // > kBatchSize rows so the chunker emits multiple batches with
  // consecutive order keys.
  std::vector<Row> rows;
  for (vid_t v = 0; v < kBatchSize + 10; ++v) {
    Row row;
    row.push_back(VertexRef{v});
    row.push_back(Entry{PropertyValue(static_cast<int64_t>(v) * 2)});
    rows.push_back(std::move(row));
  }
  const auto batches = RowsToBatches(rows, /*first_order_key=*/7);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].order_key, 7u);
  EXPECT_EQ(batches[1].order_key, 7u + kBatchSize);
  EXPECT_EQ(TotalSelected(batches), rows.size());
  const auto back = BatchesToRows(batches);
  ASSERT_EQ(back.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(back[i], rows[i]) << "row " << i;
  }
}

TEST(BatchTest, BatchesToRowsHonorsSelection) {
  std::vector<Row> rows;
  for (vid_t v = 0; v < 4; ++v) {
    Row row;
    row.push_back(VertexRef{v});
    rows.push_back(std::move(row));
  }
  auto batches = RowsToBatches(rows);
  ASSERT_EQ(batches.size(), 1u);
  batches[0].SetSelection({1, 3});
  const auto back = BatchesToRows(batches);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], rows[1]);
  EXPECT_EQ(back[1], rows[3]);
}

TEST(LexerTest, NumbersAndDotsDisambiguate) {
  auto tokens = lang::Tokenize("a.b 1.5 7.name").value();
  // a . b | 1.5 | 7 . name — the float swallows the dot, the property
  // accesses do not.
  EXPECT_EQ(tokens[0].kind, lang::TokKind::kIdent);
  EXPECT_EQ(tokens[1].text, ".");
  EXPECT_EQ(tokens[3].kind, lang::TokKind::kFloat);
  EXPECT_EQ(tokens[4].kind, lang::TokKind::kInt);
  EXPECT_EQ(tokens[5].text, ".");
}

}  // namespace
}  // namespace flex::ir
