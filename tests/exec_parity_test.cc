// Exp-2 parity harness: every SNB interactive and BI query must produce
// bit-identical result rows under the columnar (batched) path and the
// legacy row-at-a-time path, at 1 shard and at 4 shards, and the two modes
// must record the same trace span shapes — batching is an execution-layer
// change only, invisible to results and to observability. Each query runs
// both with pipeline fusion (FUSED_SCAN / FUSED_EXPAND pushdown) and with
// fusion disabled, and the two plans must agree row-for-row across every
// (worker, mode) combination: fusion is a plan-shape change only. Span
// shapes are compared within one plan (a fused plan legitimately records
// op.fused_* marker spans the unfused plan does not).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/trace.h"
#include "query/service.h"
#include "runtime/gaia.h"
#include "snb/snb.h"
#include "storage/vineyard/vineyard_store.h"

namespace flex::query {
namespace {

/// Canonicalizes a trace into its span *shape*: each span rendered as its
/// root-to-leaf path of names, all paths sorted. Two traces with equal
/// shapes executed the same logical steps, regardless of timing, worker
/// interleaving, or span-id assignment order.
std::vector<std::string> SpanShape(const trace::Trace& trace) {
  const std::vector<trace::Span> spans = trace.spans();
  std::map<uint64_t, const trace::Span*> by_id;
  for (const auto& span : spans) by_id[span.id] = &span;
  std::vector<std::string> paths;
  paths.reserve(spans.size());
  for (const auto& span : spans) {
    std::string path = span.name;
    for (uint64_t parent = span.parent; parent != trace::kNoParent;) {
      const trace::Span* p = by_id.at(parent);
      path = p->name + "/" + path;
      parent = p->parent;
    }
    paths.push_back(std::move(path));
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

class ExecParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    snb::SnbConfig config;
    config.num_persons = 200;
    config.seed = 17;
    stats_ = new snb::SnbStats();
    auto data = snb::GenerateSnb(config, stats_);
    store_ = storage::VineyardStore::Build(data).value().release();
    graph_ = store_->GetGrinHandle().release();
    service_ = new QueryService(graph_, 1);
  }
  static void TearDownTestSuite() {
    delete service_;
    delete graph_;
    delete store_;
    delete stats_;
  }

  /// Runs one plan through every (worker count, execution mode)
  /// combination with one shared parameter draw and asserts:
  ///   - result rows are bit-identical across all four combinations, and
  ///   - at each worker count, row and batched mode record identical span
  ///     shapes (shapes legitimately differ *across* worker counts: 4
  ///     shards add gaia.shard/gaia.exchange spans).
  /// `reference` receives the rows of the first combination.
  static void RunPlanAllModes(const ir::Plan& plan,
                              const std::vector<PropertyValue>& params,
                              const std::string& name,
                              std::vector<std::string>* reference) {
    bool have_reference = false;
    for (size_t workers : {size_t{1}, size_t{4}}) {
      runtime::GaiaEngine engine(graph_, workers);
      std::vector<std::vector<std::string>> results;
      std::vector<std::vector<std::string>> shapes;
      for (runtime::ExecMode mode :
           {runtime::ExecMode::kRowAtATime, runtime::ExecMode::kBatched}) {
        trace::Trace trace(name);
        auto rows = engine.Run(plan, params, {}, nullptr, &trace,
                               trace::kNoParent, mode);
        ASSERT_TRUE(rows.ok()) << rows.status().ToString();
        results.push_back(RowsToStrings(rows.value()));
        shapes.push_back(SpanShape(trace));
      }
      EXPECT_EQ(results[0], results[1])
          << "row vs batched rows diverge at " << workers << " worker(s)";
      EXPECT_EQ(shapes[0], shapes[1])
          << "row vs batched span shapes diverge at " << workers
          << " worker(s)";
      if (!have_reference) {
        *reference = results[0];
        have_reference = true;
      } else {
        EXPECT_EQ(results[0], *reference)
            << "rows diverge across worker counts";
      }
    }
  }

  /// Compiles `spec` with fusion on (the service default) and off, runs
  /// both plans through every combination, and asserts the two plans agree
  /// row-for-row: pushdown must never change results.
  static void CheckParity(const snb::QuerySpec& spec) {
    SCOPED_TRACE(spec.name);
    auto fused = service_->Compile(Language::kCypher, spec.cypher);
    ASSERT_TRUE(fused.ok()) << fused.status().ToString();
    auto parsed =
        ParseQuery(Language::kCypher, spec.cypher, graph_->schema());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    optimizer::OptimizerOptions no_fusion;
    no_fusion.fusion = false;
    const ir::Plan unfused =
        optimizer::Optimize(parsed.value(), &service_->catalog(), no_fusion,
                            &graph_->schema());
    Rng rng(20240607 + spec.name.size());
    const std::vector<PropertyValue> params = spec.params(rng, *stats_);

    std::vector<std::string> fused_rows;
    RunPlanAllModes(fused.value(), params, spec.name, &fused_rows);
    std::vector<std::string> unfused_rows;
    RunPlanAllModes(unfused, params, spec.name, &unfused_rows);
    EXPECT_EQ(fused_rows, unfused_rows) << "fusion changed result rows";
  }

  static snb::SnbStats* stats_;
  static storage::VineyardStore* store_;
  static grin::GrinGraph* graph_;
  static QueryService* service_;
};

snb::SnbStats* ExecParityTest::stats_ = nullptr;
storage::VineyardStore* ExecParityTest::store_ = nullptr;
grin::GrinGraph* ExecParityTest::graph_ = nullptr;
QueryService* ExecParityTest::service_ = nullptr;

TEST_F(ExecParityTest, InteractiveComplexQueries) {
  for (const auto& spec : snb::InteractiveComplexQueries()) CheckParity(spec);
}

TEST_F(ExecParityTest, InteractiveShortQueries) {
  for (const auto& spec : snb::InteractiveShortQueries()) CheckParity(spec);
}

TEST_F(ExecParityTest, BiQueries) {
  for (const auto& spec : snb::BiQueries()) CheckParity(spec);
}

}  // namespace
}  // namespace flex::query
