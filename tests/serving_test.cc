// Concurrent-serving correctness suite (DESIGN.md §Concurrent serving):
//
//   1. Parity oracle — N client threads firing mixed SNB interactive
//      queries concurrently against one shared QueryService must produce
//      rows bit-identical to the same (query, params) sequences run
//      serially. Concurrency is an admission/scheduling concern only;
//      results must be indistinguishable from a single-client service.
//   2. Quota exactness — a tenant capped at k slots never observes k+1
//      queries in flight (high-water-mark oracle), and over-quota
//      acquisitions fail with kResourceExhausted, nothing else.
//   3. Plan-cache correctness — a cache hit serves rows bit-identical to a
//      cold compile; parameter changes never resolve to stale results;
//      RegisterProcedure invalidates every cached plan.
//
// All client sequences are pre-drawn from seeded Rngs (workload shuffle
// derives from FLEX_CHAOS_SEED when set, so tools/check.sh serving can
// sweep schedules), making every run reproducible. The suite runs under
// TSan via tools/check.sh serving.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/barrier.h"
#include "common/metric_names.h"
#include "common/metrics.h"
#include "query/admission.h"
#include "query/plan_cache.h"
#include "query/service.h"
#include "snb/snb.h"
#include "storage/vineyard/vineyard_store.h"

namespace flex::query {
namespace {

/// Seed for the workload shuffle; FLEX_CHAOS_SEED reuses the chaos
/// harness's knob so check.sh can sweep interleavings without a new env
/// contract.
uint64_t WorkloadSeed() {
  const char* env = std::getenv("FLEX_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 20240607;
}

/// One pre-drawn client request: everything Run() needs, fixed up front so
/// the serial and concurrent executions see byte-identical inputs.
struct Request {
  std::string name;
  std::string cypher;
  std::vector<PropertyValue> params;
  EngineKind engine;
};

class ServingTest : public ::testing::Test {
 protected:
  static constexpr size_t kClients = 8;
  static constexpr size_t kRequestsPerClient = 12;

  static void SetUpTestSuite() {
    snb::SnbConfig config;
    config.num_persons = 200;
    config.seed = 17;
    stats_ = new snb::SnbStats();
    auto data = snb::GenerateSnb(config, stats_);
    store_ = storage::VineyardStore::Build(data).value().release();
    graph_ = store_->GetGrinHandle().release();
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete store_;
    delete stats_;
  }

  /// Draws `kRequestsPerClient` mixed requests for client `client`: ~70%
  /// short reads, ~30% complex, alternating engines, parameters drawn from
  /// a per-client Rng so sequences differ across clients but are stable
  /// across runs (for one WorkloadSeed).
  static std::vector<Request> DrawClientSequence(size_t client) {
    static const std::vector<snb::QuerySpec> shorts =
        snb::InteractiveShortQueries();
    static const std::vector<snb::QuerySpec> complexes =
        snb::InteractiveComplexQueries();
    Rng rng(WorkloadSeed() * 1315423911ULL + client);
    std::vector<Request> out;
    out.reserve(kRequestsPerClient);
    for (size_t i = 0; i < kRequestsPerClient; ++i) {
      const bool pick_short = rng.NextDouble() < 0.7;
      const auto& suite = pick_short ? shorts : complexes;
      const auto& spec = suite[rng.Next() % suite.size()];
      Request req;
      req.name = spec.name;
      req.cypher = spec.cypher;
      req.params = spec.params(rng, *stats_);
      req.engine = (i % 2 == 0) ? EngineKind::kGaia : EngineKind::kHiActor;
      out.push_back(std::move(req));
    }
    return out;
  }

  static std::vector<std::string> RunOne(QueryService* service,
                                         const Request& req,
                                         const std::string& tenant = "") {
    RunOptions options;
    options.engine = req.engine;
    options.tenant = tenant;
    auto rows = service->Run(Language::kCypher, req.cypher, options,
                             req.params);
    EXPECT_TRUE(rows.ok()) << req.name << ": " << rows.status().ToString();
    if (!rows.ok()) return {"<error: " + rows.status().ToString() + ">"};
    return RowsToStrings(rows.value());
  }

  static snb::SnbStats* stats_;
  static storage::VineyardStore* store_;
  static grin::GrinGraph* graph_;
};

snb::SnbStats* ServingTest::stats_ = nullptr;
storage::VineyardStore* ServingTest::store_ = nullptr;
grin::GrinGraph* ServingTest::graph_ = nullptr;

// ------------------------------------------------------------ parity oracle

TEST_F(ServingTest, ConcurrentClientsMatchSerialRuns) {
  // Pre-draw every client's request sequence, then compute the expected
  // rows serially on a dedicated service. The serial service uses the same
  // plan cache code, so this also exercises hit-path rows (repeated
  // templates recur within and across sequences).
  std::vector<std::vector<Request>> sequences;
  for (size_t c = 0; c < kClients; ++c) {
    sequences.push_back(DrawClientSequence(c));
  }

  std::vector<std::vector<std::vector<std::string>>> expected(kClients);
  {
    QueryService serial_service(graph_, 4);
    for (size_t c = 0; c < kClients; ++c) {
      for (const Request& req : sequences[c]) {
        expected[c].push_back(RunOne(&serial_service, req));
      }
    }
  }

  // Fire the same sequences from kClients real threads sharing one
  // service; a barrier maximizes overlap. Each client owns its results
  // vector, so the only shared mutable state is the service under test.
  QueryService service(graph_, 4);
  std::vector<std::vector<std::vector<std::string>>> actual(kClients);
  Barrier start(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      start.Await();
      for (const Request& req : sequences[c]) {
        actual[c].push_back(RunOne(&service, req));
      }
    });
  }
  for (auto& t : clients) t.join();

  for (size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(actual[c].size(), expected[c].size()) << "client " << c;
    for (size_t i = 0; i < expected[c].size(); ++i) {
      EXPECT_EQ(actual[c][i], expected[c][i])
          << "client " << c << " request " << i << " ("
          << sequences[c][i].name << ") diverged from serial run";
    }
  }

  // The workload repeats templates heavily (21 specs, 96 requests), so the
  // shared cache must have served hits.
  const PlanCacheStats stats = service.plan_cache().stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

// ------------------------------------------------------------ quota slots

TEST(TenantAdmissionTest, ExactSlotAccounting) {
  TenantAdmission admission;
  admission.SetQuota("t", 3);

  TenantAdmission::Slot slots[3];
  for (auto& slot : slots) {
    ASSERT_TRUE(admission.Acquire("t", &slot).ok());
  }
  EXPECT_EQ(admission.InFlight("t"), 3);

  // Slot 4 of 3: rejected, with exactly kResourceExhausted.
  TenantAdmission::Slot overflow;
  Status rejected = admission.Acquire("t", &overflow);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.InFlight("t"), 3);
  EXPECT_EQ(admission.rejected(), 1u);

  // Releasing one slot re-opens exactly one admission.
  slots[0].Release();
  EXPECT_EQ(admission.InFlight("t"), 2);
  ASSERT_TRUE(admission.Acquire("t", &overflow).ok());
  EXPECT_EQ(admission.InFlight("t"), 3);

  // Other tenants are unaffected (default quota: unlimited).
  TenantAdmission::Slot other;
  EXPECT_TRUE(admission.Acquire("other", &other).ok());
  EXPECT_EQ(admission.PeakInFlight("t"), 3);
}

TEST(TenantAdmissionTest, ConcurrentAcquireNeverExceedsQuota) {
  // 16 threads hammer a 4-slot tenant with acquire/release cycles; the CAS
  // admission must keep the high-water mark at <= 4 and account every
  // failure as a rejection (conservation: grants + rejections == attempts).
  constexpr int kThreads = 16;
  constexpr int kIterations = 500;
  constexpr int64_t kQuota = 4;
  TenantAdmission admission;
  admission.SetQuota("t", kQuota);

  std::atomic<uint64_t> granted{0};
  Barrier start(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      start.Await();
      for (int i = 0; i < kIterations; ++i) {
        TenantAdmission::Slot slot;
        Status status = admission.Acquire("t", &slot);
        if (status.ok()) {
          granted.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(status.code(), StatusCode::kResourceExhausted);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_LE(admission.PeakInFlight("t"), kQuota);
  EXPECT_EQ(admission.InFlight("t"), 0);
  EXPECT_EQ(granted.load() + admission.rejected(),
            static_cast<uint64_t>(kThreads) * kIterations);
}

TEST_F(ServingTest, TenantQuotaEnforcedThroughRun) {
  QueryService service(graph_, 4);
  constexpr int64_t kQuota = 2;
  constexpr size_t kThreads = 8;
  service.SetTenantQuota("capped", kQuota);

  // Each thread runs a complex query a few times under the capped tenant.
  // Every outcome must be either correct rows or kResourceExhausted — no
  // other failure mode exists in a fault-free run.
  const auto specs = snb::InteractiveComplexQueries();
  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> rejected_count{0};
  Barrier start(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(WorkloadSeed() + 7 * t);
      start.Await();
      for (int i = 0; i < 6; ++i) {
        const auto& spec = specs[(t + i) % specs.size()];
        RunOptions options;
        options.tenant = "capped";
        auto rows = service.Run(Language::kCypher, spec.cypher, options,
                                spec.params(rng, *stats_));
        if (rows.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(rows.status().code(), StatusCode::kResourceExhausted)
              << spec.name << ": " << rows.status().ToString();
          rejected_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // The exactness oracle: with 8 threads contending for 2 slots the peak
  // must still never pass the cap, and everything not admitted was
  // rejected (conservation against the per-tenant counters).
  EXPECT_LE(service.admission().PeakInFlight("capped"), kQuota);
  EXPECT_EQ(service.admission().InFlight("capped"), 0);
  EXPECT_GT(ok_count.load(), 0u);
  EXPECT_EQ(ok_count.load() + rejected_count.load(), kThreads * 6);
  EXPECT_EQ(service.admission().rejected(), rejected_count.load());

  // An uncapped tenant on the same service is never turned away.
  const auto spec = snb::InteractiveShortQueries()[0];
  Rng rng(1);
  RunOptions uncapped;
  auto rows = service.Run(Language::kCypher, spec.cypher, uncapped,
                          spec.params(rng, *stats_));
  EXPECT_TRUE(rows.ok());
}

// ------------------------------------------------------------- plan cache

TEST_F(ServingTest, PlanCacheHitServesIdenticalRows) {
  QueryService service(graph_, 2);
  const auto specs = snb::InteractiveShortQueries();
  Rng rng(WorkloadSeed() + 99);
  for (const auto& spec : specs) {
    const auto params = spec.params(rng, *stats_);
    const uint64_t misses_before = service.plan_cache().stats().misses;
    RunOptions options;
    auto cold = service.Run(Language::kCypher, spec.cypher, options, params);
    ASSERT_TRUE(cold.ok()) << spec.name << ": " << cold.status().ToString();
    EXPECT_EQ(service.plan_cache().stats().misses, misses_before + 1);

    const uint64_t hits_before = service.plan_cache().stats().hits;
    auto warm = service.Run(Language::kCypher, spec.cypher, options, params);
    ASSERT_TRUE(warm.ok()) << spec.name << ": " << warm.status().ToString();
    EXPECT_EQ(service.plan_cache().stats().hits, hits_before + 1)
        << spec.name << " did not hit the cache on re-run";
    EXPECT_EQ(RowsToStrings(cold.value()), RowsToStrings(warm.value()))
        << spec.name << ": cached plan served different rows";
  }
}

TEST_F(ServingTest, ParameterChangesNeverServeStaleResults) {
  // Same cached plan, fresh parameters every call: the rows must track the
  // parameters, proving binding happens at execution, never inside the
  // cached artifact. Oracle: a cache-disabled service.
  ServingOptions no_cache;
  no_cache.plan_cache_capacity = 0;
  QueryService cached(graph_, 2);
  QueryService uncached(graph_, 2, {}, no_cache);

  const auto spec = snb::InteractiveShortQueries()[0];  // S1: person lookup.
  Rng rng(WorkloadSeed() + 3);
  for (int i = 0; i < 10; ++i) {
    const auto params = spec.params(rng, *stats_);
    RunOptions options;
    auto from_cache = cached.Run(Language::kCypher, spec.cypher, options,
                                 params);
    auto fresh = uncached.Run(Language::kCypher, spec.cypher, options,
                              params);
    ASSERT_TRUE(from_cache.ok());
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(RowsToStrings(from_cache.value()),
              RowsToStrings(fresh.value()))
        << spec.name << " draw " << i
        << ": cached plan ignored fresh parameters";
  }
  EXPECT_EQ(uncached.plan_cache().size(), 0u);
  EXPECT_GT(cached.plan_cache().stats().hits, 0u);
}

TEST_F(ServingTest, RegisterProcedureInvalidatesCache) {
  QueryService service(graph_, 2);
  const auto spec = snb::InteractiveShortQueries()[0];
  Rng rng(WorkloadSeed() + 11);
  const auto params = spec.params(rng, *stats_);

  RunOptions options;
  ASSERT_TRUE(
      service.Run(Language::kCypher, spec.cypher, options, params).ok());
  ASSERT_GT(service.plan_cache().size(), 0u);

  ASSERT_TRUE(service
                  .RegisterProcedure("s1_proc", Language::kCypher,
                                     spec.cypher)
                  .ok());
  EXPECT_EQ(service.plan_cache().size(), 0u)
      << "RegisterProcedure must drop every cached plan";
  EXPECT_EQ(service.plan_cache().stats().invalidations, 1u);

  // Post-invalidation runs recompile (a miss) and still serve correct rows.
  const uint64_t misses_before = service.plan_cache().stats().misses;
  auto rows = service.Run(Language::kCypher, spec.cypher, options, params);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(service.plan_cache().stats().misses, misses_before + 1);
}

TEST(PlanCacheTest, LruEvictionAtCapacity) {
  // Tiny cache: kShards entries total (one per shard), so a second insert
  // into any shard evicts that shard's LRU entry.
  PlanCache cache(PlanCache::kShards);
  auto plan = std::make_shared<const ir::Plan>();
  for (int i = 0; i < 64; ++i) {
    cache.Insert("q" + std::to_string(i), plan);
  }
  EXPECT_LE(cache.size(), cache.capacity());
  const PlanCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.evictions, 64 - cache.size());
}

TEST(PlanCacheTest, DisabledCacheNeverStoresOrServes) {
  PlanCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert("q", std::make_shared<const ir::Plan>());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup("q"), nullptr);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(PlanCacheTest, ConcurrentLookupInsertInvalidate) {
  // TSan-facing stress: readers, writers and an invalidator race on one
  // cache; the invariant is simply no data race and size <= capacity.
  PlanCache cache(32);
  auto plan = std::make_shared<const ir::Plan>();
  constexpr int kThreads = 8;
  Barrier start(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.Await();
      for (int i = 0; i < 400; ++i) {
        const std::string key = "q" + std::to_string((t * 7 + i) % 48);
        if (t == 0 && i % 100 == 99) {
          cache.InvalidateAll();
        } else if (i % 3 == 0) {
          cache.Insert(key, plan);
        } else {
          (void)cache.Lookup(key);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(cache.size(), cache.capacity());
}

}  // namespace
}  // namespace flex::query
