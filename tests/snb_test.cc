#include <gtest/gtest.h>

#include "query/service.h"
#include "snb/snb.h"
#include "storage/vineyard/vineyard_store.h"

namespace flex::snb {
namespace {

class SnbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SnbConfig config;
    config.num_persons = 300;
    config.seed = 7;
    stats_ = new SnbStats();
    auto data = GenerateSnb(config, stats_);
    store_ = storage::VineyardStore::Build(data).value().release();
    graph_ = store_->GetGrinHandle().release();
    service_ = new query::QueryService(graph_, 2);
  }
  static void TearDownTestSuite() {
    delete service_;
    delete graph_;
    delete store_;
    delete stats_;
  }

  static SnbStats* stats_;
  static storage::VineyardStore* store_;
  static grin::GrinGraph* graph_;
  static query::QueryService* service_;
};

SnbStats* SnbTest::stats_ = nullptr;
storage::VineyardStore* SnbTest::store_ = nullptr;
grin::GrinGraph* SnbTest::graph_ = nullptr;
query::QueryService* SnbTest::service_ = nullptr;

TEST_F(SnbTest, GeneratorProducesExpectedShape) {
  EXPECT_EQ(stats_->num_persons, 300u);
  EXPECT_GT(stats_->num_posts, 1000u);
  EXPECT_GT(stats_->num_comments, 2000u);
  EXPECT_GE(stats_->num_forums, 20u);
  EXPECT_EQ(store_->num_vertices(),
            stats_->num_persons + stats_->num_posts + stats_->num_comments +
                stats_->num_forums + stats_->num_tags);
}

TEST_F(SnbTest, GeneratorIsDeterministic) {
  SnbConfig config;
  config.num_persons = 50;
  config.seed = 99;
  SnbStats a, b;
  auto g1 = GenerateSnb(config, &a);
  auto g2 = GenerateSnb(config, &b);
  EXPECT_EQ(g1.total_vertices(), g2.total_vertices());
  EXPECT_EQ(g1.total_edges(), g2.total_edges());
  EXPECT_EQ(g1.edges[0].src_oids, g2.edges[0].src_oids);
}

TEST_F(SnbTest, AllComplexQueriesCompileAndRun) {
  Rng rng(1);
  for (const QuerySpec& q : InteractiveComplexQueries()) {
    auto plan = service_->Compile(query::Language::kCypher, q.cypher);
    ASSERT_TRUE(plan.ok()) << q.name << ": " << plan.status().ToString();
    for (int rep = 0; rep < 3; ++rep) {
      auto rows = service_->Run(query::Language::kCypher, q.cypher,
                                query::EngineKind::kGaia,
                                q.params(rng, *stats_));
      ASSERT_TRUE(rows.ok()) << q.name << ": " << rows.status().ToString();
    }
  }
}

TEST_F(SnbTest, AllShortQueriesCompileAndRun) {
  Rng rng(2);
  for (const QuerySpec& q : InteractiveShortQueries()) {
    auto rows = service_->Run(query::Language::kCypher, q.cypher,
                              query::EngineKind::kHiActor,
                              q.params(rng, *stats_));
    ASSERT_TRUE(rows.ok()) << q.name << ": " << rows.status().ToString();
  }
}

TEST_F(SnbTest, AllBiQueriesReturnRows) {
  Rng rng(3);
  size_t nonempty = 0;
  for (const QuerySpec& q : BiQueries()) {
    auto rows = service_->Run(query::Language::kCypher, q.cypher,
                              query::EngineKind::kGaia, q.params(rng, *stats_));
    ASSERT_TRUE(rows.ok()) << q.name << ": " << rows.status().ToString();
    nonempty += !rows.value().empty();
  }
  EXPECT_EQ(nonempty, 20u);  // Aggregation queries always produce rows.
}

TEST_F(SnbTest, ShortQueriesAgreeAcrossEngines) {
  Rng rng1(4), rng2(4);
  for (const QuerySpec& q : InteractiveShortQueries()) {
    auto a = service_->Run(query::Language::kCypher, q.cypher,
                           query::EngineKind::kGaia, q.params(rng1, *stats_));
    auto b = service_->Run(query::Language::kCypher, q.cypher,
                           query::EngineKind::kHiActor,
                           q.params(rng2, *stats_));
    ASSERT_TRUE(a.ok() && b.ok()) << q.name;
    EXPECT_EQ(query::RowsToStrings(a.value()), query::RowsToStrings(b.value()))
        << q.name;
  }
}

TEST_F(SnbTest, UpdatesApplyToGart) {
  SnbConfig config;
  config.num_persons = 100;
  config.seed = 11;
  SnbStats stats;
  auto data = GenerateSnb(config, &stats);
  auto gart = storage::GartStore::Build(data).value();
  const size_t before = gart->num_vertices();

  Rng rng(5);
  uint64_t serial = 0;
  for (const UpdateSpec& u : InteractiveUpdates()) {
    for (int rep = 0; rep < 5; ++rep) {
      Status st = u.apply(gart.get(), rng, stats, serial++);
      ASSERT_TRUE(st.ok()) << u.name << ": " << st.ToString();
    }
    gart->CommitVersion();
  }
  EXPECT_GT(gart->num_vertices(), before);

  // Interactive reads still run against the updated snapshot.
  auto snap = gart->GetSnapshot();
  query::NaiveGraphDB db(snap.get());
  auto rows = db.Run(query::Language::kCypher,
                     InteractiveShortQueries()[2].cypher,
                     {PropertyValue(int64_t{5})});
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
}

}  // namespace
}  // namespace flex::snb
