// MutableGraphStore / DurableStore behavior tests: the uniform write API
// on both dynamic backends, WAL commit/recover round-trips, MVCC property
// updates, snapshot-isolation under concurrent readers, and a mixed
// read/write SNB-style scenario running Cypher over pinned snapshots.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "query/service.h"
#include "storage/durable_store.h"
#include "storage/gart/gart_store.h"
#include "storage/livegraph/livegraph_store.h"
#include "storage/mutable_store.h"

namespace flex::storage {
namespace {

class MutationTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : paths_) {
      std::error_code ec;
      std::filesystem::remove(p, ec);
    }
  }

  std::string TempWalPath() {
    static std::atomic<int> counter{0};
    std::string p = "flex_mutation_test_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter++) + ".wal";
    paths_.push_back(p);
    return p;
  }

  std::vector<std::string> paths_;
};

/// One vertex label "V" {name}, one edge label "E" {weight, ts}.
GraphSchema SimpleSchema() {
  GraphSchema schema;
  EXPECT_TRUE(
      schema.AddVertexLabel("V", {{"name", PropertyType::kString}}).ok());
  EXPECT_TRUE(schema
                  .AddEdgeLabel("E", 0, 0,
                                {{"weight", PropertyType::kDouble},
                                 {"ts", PropertyType::kInt64}})
                  .ok());
  return schema;
}

/// Person --LIKES--> Post, the shape of the SNB interactive updates.
GraphSchema SnbSchema() {
  GraphSchema schema;
  EXPECT_TRUE(
      schema.AddVertexLabel("Person", {{"name", PropertyType::kString}}).ok());
  EXPECT_TRUE(
      schema.AddVertexLabel("Post", {{"content", PropertyType::kString}})
          .ok());
  EXPECT_TRUE(
      schema.AddEdgeLabel("LIKES", 0, 1, {{"weight", PropertyType::kDouble}})
          .ok());
  return schema;
}

std::shared_ptr<MutableGraphStore> NewGart(const GraphSchema& schema) {
  auto store = GartStore::Create(schema);
  EXPECT_TRUE(store.ok()) << store.status().message();
  return std::shared_ptr<MutableGraphStore>(std::move(store).value());
}

// ------------------------------------------------- uniform write surface

TEST_F(MutationTest, GartThroughBaseInterface) {
  auto store = NewGart(SimpleSchema());
  ASSERT_TRUE(
      store->AppendVertex(0, 10, {PropertyValue(std::string("a"))}).ok());
  ASSERT_TRUE(
      store->AppendVertex(0, 11, {PropertyValue(std::string("b"))}).ok());
  ASSERT_TRUE(store->AppendEdge(0, 10, 11, 2.5, 7).ok());
  EXPECT_EQ(store->read_version(), 0u);
  // Uncommitted writes are invisible to a snapshot pinned now.
  auto before = store->PinSnapshot();
  EXPECT_EQ(before->NumVerticesOfLabel(0), 0u);

  EXPECT_EQ(store->CommitBatch(), 1u);
  EXPECT_EQ(store->read_version(), 1u);
  auto after = store->PinSnapshot();
  EXPECT_EQ(after->SnapshotVersion(), 1u);
  EXPECT_EQ(after->NumVerticesOfLabel(0), 2u);
  auto found = after->FindVertex(0, 11);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(after->GetVertexProperty(found.value(), 0).AsString(), "b");
  // The old pin still reads the empty epoch (snapshot isolation).
  EXPECT_EQ(before->NumVerticesOfLabel(0), 0u);
}

TEST_F(MutationTest, GartUpdatePropertyIsMvcc) {
  auto store = NewGart(SimpleSchema());
  ASSERT_TRUE(
      store->AppendVertex(0, 10, {PropertyValue(std::string("old"))}).ok());
  ASSERT_TRUE(store->CommitBatch() == 1u);
  auto old_snap = store->PinSnapshot();

  ASSERT_TRUE(
      store->UpdateProperty(0, 10, 0, PropertyValue(std::string("new")))
          .ok());
  ASSERT_TRUE(store->CommitBatch() == 2u);
  auto new_snap = store->PinSnapshot();

  const vid_t v = old_snap->FindVertex(0, 10).value();
  EXPECT_EQ(old_snap->GetVertexProperty(v, 0).AsString(), "old");
  EXPECT_EQ(new_snap->GetVertexProperty(v, 0).AsString(), "new");

  // Type and existence are validated against the schema.
  EXPECT_EQ(store->UpdateProperty(0, 10, 0, PropertyValue(int64_t{3})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store->UpdateProperty(0, 999, 0, PropertyValue(std::string("x")))
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      store->UpdateProperty(0, 10, 9, PropertyValue(std::string("x"))).code(),
      StatusCode::kInvalidArgument);
}

TEST_F(MutationTest, LiveGraphShapeConstraints) {
  auto store = std::make_shared<LiveGraphStore>(2);
  MutableGraphStore* base = store.get();
  // Dense oids: the next vid is the only legal append.
  EXPECT_EQ(base->AppendVertex(0, 5, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(base->AppendVertex(0, 1, {}).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(base->AppendVertex(1, 2, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(base->AppendVertex(0, 2, {PropertyValue(true)}).status().code(),
            StatusCode::kUnimplemented);
  auto added = base->AppendVertex(0, 2, {});
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(added.value(), 2u);
  ASSERT_TRUE(base->AppendEdge(0, 0, 2, 1.5, 0).ok());
  EXPECT_EQ(base->UpdateProperty(0, 0, 0, PropertyValue(true)).code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(base->CommitBatch(), 1u);

  auto snap = base->PinSnapshot();
  EXPECT_EQ(snap->NumVerticesOfLabel(0), 3u);
  EXPECT_EQ(snap->Degree(0, Direction::kOut, 0), 1u);
  // A pre-growth snapshot neither sees vertex 2 nor the edge.
  auto old_snap = base->PinSnapshot(0);
  EXPECT_EQ(old_snap->NumVerticesOfLabel(0), 2u);
  EXPECT_EQ(old_snap->Degree(0, Direction::kOut, 0), 0u);
}

// --------------------------------------------------- durable round trips

TEST_F(MutationTest, DurableCommitRecoverRoundTrip) {
  const std::string wal = TempWalPath();
  const GraphSchema schema = SimpleSchema();

  uint32_t fp = 0;
  version_t version = 0;
  {
    auto ds = DurableStore::Open(NewGart(schema), wal);
    ASSERT_TRUE(ds.ok()) << ds.status().message();
    DurableStore& s = *ds.value();
    EXPECT_EQ(s.recovery_stats().committed_batches, 0u);

    // Batch 1: two vertices and an edge.
    ASSERT_TRUE(s.AppendVertex(0, 10, {PropertyValue(std::string("a"))}).ok());
    ASSERT_TRUE(s.AppendVertex(0, 11, {PropertyValue(std::string("b"))}).ok());
    ASSERT_TRUE(s.AppendEdge(0, 10, 11, 2.5, 7).ok());
    auto e1 = s.CommitBatch();
    ASSERT_TRUE(e1.ok()) << e1.status().message();
    EXPECT_EQ(e1.value(), 1u);

    // Batch 2: every remaining record type — update, delete, new edge.
    ASSERT_TRUE(
        s.UpdateProperty(0, 10, 0, PropertyValue(std::string("a2"))).ok());
    ASSERT_TRUE(s.RemoveEdge(0, 10, 11).ok());
    ASSERT_TRUE(s.AppendEdge(0, 11, 10, -0.5, 9).ok());
    auto e2 = s.CommitBatch();
    ASSERT_TRUE(e2.ok());
    EXPECT_EQ(e2.value(), 2u);

    version = s.read_version();
    fp = SnapshotFingerprint(*s.PinSnapshot());
  }

  // Recover onto a fresh backend: bit-identical for readers.
  auto reopened = DurableStore::Open(NewGart(schema), wal);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  DurableStore& r = *reopened.value();
  EXPECT_EQ(r.recovery_stats().committed_batches, 2u);
  EXPECT_EQ(r.recovery_stats().applied_records, 6u);
  EXPECT_EQ(r.read_version(), version);
  EXPECT_EQ(SnapshotFingerprint(*r.PinSnapshot()), fp);

  // The recovered store accepts new writes; a third open sees them too.
  ASSERT_TRUE(r.AppendVertex(0, 12, {PropertyValue(std::string("c"))}).ok());
  auto e3 = r.CommitBatch();
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(e3.value(), version + 1);
  const uint32_t fp3 = SnapshotFingerprint(*r.PinSnapshot());

  auto third = DurableStore::Open(NewGart(schema), wal);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value()->read_version(), version + 1);
  EXPECT_EQ(SnapshotFingerprint(*third.value()->PinSnapshot()), fp3);
}

TEST_F(MutationTest, DurableEmptyBatchIsNoOp) {
  auto ds = DurableStore::Open(NewGart(SimpleSchema()), TempWalPath());
  ASSERT_TRUE(ds.ok());
  auto epoch = ds.value()->CommitBatch();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(epoch.value(), 0u);
  EXPECT_FALSE(ds.value()->failed());
}

TEST_F(MutationTest, DurableRejectedRecordFailStops) {
  auto ds = DurableStore::Open(NewGart(SimpleSchema()), TempWalPath());
  ASSERT_TRUE(ds.ok());
  DurableStore& s = *ds.value();
  // An edge between vertices that don't exist is only caught at apply
  // time, after the batch went durable: the store fail-stops.
  ASSERT_TRUE(s.AppendEdge(0, 404, 405, 1.0, 0).ok());
  EXPECT_FALSE(s.CommitBatch().ok());
  EXPECT_TRUE(s.failed());
  EXPECT_EQ(s.AppendVertex(0, 1, {PropertyValue(std::string("x"))}).code(),
            StatusCode::kAborted);
  EXPECT_EQ(s.CommitBatch().status().code(), StatusCode::kAborted);
}

TEST_F(MutationTest, DurableLiveGraphRoundTrip) {
  const std::string wal = TempWalPath();
  uint32_t fp = 0;
  {
    auto ds =
        DurableStore::Open(std::make_shared<LiveGraphStore>(2), wal);
    ASSERT_TRUE(ds.ok());
    DurableStore& s = *ds.value();
    ASSERT_TRUE(s.AppendVertex(0, 2, {}).ok());
    ASSERT_TRUE(s.AppendEdge(0, 0, 2, 3.5, 0).ok());
    ASSERT_TRUE(s.AppendEdge(0, 1, 2, 4.5, 0).ok());
    ASSERT_TRUE(s.CommitBatch().ok());
    ASSERT_TRUE(s.RemoveEdge(0, 1, 2).ok());
    ASSERT_TRUE(s.CommitBatch().ok());
    EXPECT_EQ(s.read_version(), 2u);
    fp = SnapshotFingerprint(*s.PinSnapshot());
  }
  auto reopened =
      DurableStore::Open(std::make_shared<LiveGraphStore>(2), wal);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value()->read_version(), 2u);
  EXPECT_EQ(SnapshotFingerprint(*reopened.value()->PinSnapshot()), fp);
}

// ------------------------------------------- snapshot isolation (stress)

/// Writer publishes `epochs` batches (2 vertices + 1 edge each) while
/// `readers` concurrently pin snapshots and assert that whatever epoch
/// they pinned, the (vertex, edge) counts are exactly that epoch's —
/// never a half-batch.
void RunIsolationStress(MutableGraphStore* store, int epochs, oid_t oid0) {
  // expected[v] = counts visible at epoch v; filled before readers start
  // (the vector itself is immutable while threads run).
  struct Counts {
    uint64_t vertices;
    uint64_t edges;
  };
  std::vector<Counts> expected(epochs + 1);
  const uint64_t base_vertices = store->PinSnapshot()->NumVerticesOfLabel(0);
  for (int v = 0; v <= epochs; ++v) {
    expected[v] = {base_vertices + 2 * static_cast<uint64_t>(v),
                   static_cast<uint64_t>(v)};
  }

  std::atomic<bool> done{false};
  ThreadPool pool(4);
  for (int r = 0; r < 4; ++r) {
    pool.Submit([&] {
      do {
        auto snap = store->PinSnapshot();
        const version_t v = snap->SnapshotVersion();
        ASSERT_LE(v, static_cast<version_t>(epochs));
        EXPECT_EQ(snap->NumVerticesOfLabel(0), expected[v].vertices)
            << "epoch " << v;
        // Visible vertices are a prefix of the vid space; summing their
        // out-degrees at the pinned version counts committed edges only.
        uint64_t edges = 0;
        for (vid_t i = 0; i < expected[v].vertices; ++i) {
          edges += snap->Degree(i, Direction::kOut, 0);
        }
        EXPECT_EQ(edges, expected[v].edges) << "epoch " << v;
      } while (!done.load(std::memory_order_acquire));
    });
  }

  for (int e = 0; e < epochs; ++e) {
    const oid_t a = oid0 + 2 * e;
    const oid_t b = a + 1;
    ASSERT_TRUE(store->AppendVertex(0, a, {}).ok());
    ASSERT_TRUE(store->AppendVertex(0, b, {}).ok());
    ASSERT_TRUE(store->AppendEdge(0, a, b, 1.0, e).ok());
    store->CommitBatch();
  }
  done.store(true, std::memory_order_release);
  pool.Wait();

  EXPECT_EQ(store->read_version(), static_cast<version_t>(epochs));
  auto final_snap = store->PinSnapshot();
  EXPECT_EQ(final_snap->NumVerticesOfLabel(0), expected[epochs].vertices);
}

TEST_F(MutationTest, GartSnapshotIsolationUnderConcurrentCommits) {
  GraphSchema schema;
  ASSERT_TRUE(schema.AddVertexLabel("V", {}).ok());
  ASSERT_TRUE(schema
                  .AddEdgeLabel("E", 0, 0,
                                {{"weight", PropertyType::kDouble},
                                 {"ts", PropertyType::kInt64}})
                  .ok());
  auto store = NewGart(schema);
  RunIsolationStress(store.get(), 40, /*oid0=*/100);
}

TEST_F(MutationTest, LiveGraphSnapshotIsolationUnderConcurrentCommits) {
  auto store = std::make_shared<LiveGraphStore>(0);
  // LiveGraph oids are dense from 0.
  RunIsolationStress(store.get(), 40, /*oid0=*/0);
}

// ------------------------------------- mixed read/write (SNB-style, MVCC)

TEST_F(MutationTest, MixedCypherReadsOverPinnedSnapshotsDuringWrites) {
  auto store = NewGart(SnbSchema());
  constexpr int kEpochs = 12;

  std::atomic<bool> done{false};
  ThreadPool pool(3);
  for (int r = 0; r < 3; ++r) {
    pool.Submit([&] {
      do {
        auto snap = store->PinSnapshot();
        const version_t v = snap->SnapshotVersion();
        // A full interactive stack over the pinned view: the graph is
        // bound at construction, so every query answers at epoch v even
        // while the writer publishes newer ones.
        query::QueryService service(snap.get(), /*num_workers=*/2);
        auto rows = service.Run(query::Language::kCypher,
                                "MATCH (p:Person) RETURN p.name");
        ASSERT_TRUE(rows.ok()) << rows.status().message();
        EXPECT_EQ(rows.value().size(), static_cast<size_t>(v))
            << "pinned epoch " << v;
        auto liked = service.Run(
            query::Language::kCypher,
            "MATCH (p:Person)-[:LIKES]->(q:Post) RETURN q.content");
        ASSERT_TRUE(liked.ok()) << liked.status().message();
        EXPECT_EQ(liked.value().size(), static_cast<size_t>(v));
      } while (!done.load(std::memory_order_acquire));
    });
  }

  // One person + one post + one like per epoch, so the row counts above
  // equal the pinned epoch number exactly.
  for (int e = 1; e <= kEpochs; ++e) {
    ASSERT_TRUE(store
                    ->AppendVertex(0, 1000 + e,
                                   {PropertyValue(std::string("p") +
                                                  std::to_string(e))})
                    .ok());
    ASSERT_TRUE(store
                    ->AppendVertex(1, 2000 + e,
                                   {PropertyValue(std::string("post") +
                                                  std::to_string(e))})
                    .ok());
    ASSERT_TRUE(store->AppendEdge(0, 1000 + e, 2000 + e, 1.0, e).ok());
    EXPECT_EQ(store->CommitBatch(), static_cast<version_t>(e));
  }
  done.store(true, std::memory_order_release);
  pool.Wait();

  auto snap = store->PinSnapshot();
  query::QueryService service(snap.get(), 2);
  auto rows = service.Run(query::Language::kCypher,
                          "MATCH (p:Person) RETURN p.name");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), static_cast<size_t>(kEpochs));
}

// --------------------------------------------------- HTAP (serving + OLTP)

TEST_F(MutationTest, HtapClientsReadPinnedEpochsWhileWriterCommits) {
  // The first HTAP scenario: a writer advances epochs through DurableStore
  // (WAL group commit underneath) while concurrent QueryService clients
  // serve Cypher reads over pinned snapshots. The oracle is per-epoch
  // fingerprinting: every client records (pinned version, result rows),
  // and after the run each recorded version is re-pinned and re-queried
  // serially — the concurrent answer must match the serial answer for that
  // epoch exactly, and the re-pinned store fingerprint must match the one
  // taken at commit time (epochs are immutable and revisitable).
  auto ds = DurableStore::Open(NewGart(SnbSchema()), TempWalPath());
  ASSERT_TRUE(ds.ok()) << ds.status().message();
  DurableStore& store = *ds.value();
  constexpr int kEpochs = 12;
  constexpr int kClients = 3;

  // Commit-time fingerprints, indexed by epoch. Slot 0 is the empty graph.
  // The writer fills epochs 1..kEpochs while the clients run; clients
  // never read this vector (they only pin snapshots), so the only
  // synchronization it needs is the final pool.Wait().
  std::vector<uint32_t> commit_fp(kEpochs + 1);
  commit_fp[0] = SnapshotFingerprint(*store.PinSnapshot());

  struct Observation {
    version_t version;
    std::vector<std::string> persons;
    std::vector<std::string> liked;
  };
  std::vector<std::vector<Observation>> observed(kClients);

  std::atomic<bool> done{false};
  ThreadPool pool(kClients);
  for (int c = 0; c < kClients; ++c) {
    pool.Submit([&, c] {
      do {
        auto snap = store.PinSnapshot();
        const version_t v = snap->SnapshotVersion();
        query::QueryService service(snap.get(), /*num_workers=*/2);
        query::RunOptions options;
        options.tenant = "htap-client-" + std::to_string(c);
        auto persons = service.Run(query::Language::kCypher,
                                   "MATCH (p:Person) RETURN p.name", options);
        ASSERT_TRUE(persons.ok()) << persons.status().message();
        auto liked = service.Run(
            query::Language::kCypher,
            "MATCH (p:Person)-[:LIKES]->(q:Post) RETURN q.content", options);
        ASSERT_TRUE(liked.ok()) << liked.status().message();
        observed[c].push_back({v, query::RowsToStrings(persons.value()),
                               query::RowsToStrings(liked.value())});
      } while (!done.load(std::memory_order_acquire));
    });
  }

  for (int e = 1; e <= kEpochs; ++e) {
    ASSERT_TRUE(store
                    .AppendVertex(0, 1000 + e,
                                  {PropertyValue(std::string("p") +
                                                 std::to_string(e))})
                    .ok());
    ASSERT_TRUE(store
                    .AppendVertex(1, 2000 + e,
                                  {PropertyValue(std::string("post") +
                                                 std::to_string(e))})
                    .ok());
    ASSERT_TRUE(store.AppendEdge(0, 1000 + e, 2000 + e, 1.0, e).ok());
    auto committed = store.CommitBatch();
    ASSERT_TRUE(committed.ok()) << committed.status().message();
    ASSERT_EQ(committed.value(), static_cast<version_t>(e));
    commit_fp[e] = SnapshotFingerprint(*store.PinSnapshot(e));
  }
  done.store(true, std::memory_order_release);
  pool.Wait();

  // Serial re-validation: for every epoch any client pinned, re-pin it and
  // recompute the answer. Concurrent result == serial result, per epoch.
  std::vector<bool> epoch_seen(kEpochs + 1, false);
  for (int c = 0; c < kClients; ++c) {
    ASSERT_FALSE(observed[c].empty()) << "client " << c << " never read";
    for (const Observation& obs : observed[c]) {
      ASSERT_LE(obs.version, static_cast<version_t>(kEpochs));
      epoch_seen[obs.version] = true;
      auto snap = store.PinSnapshot(obs.version);
      ASSERT_NE(snap, nullptr);
      EXPECT_EQ(SnapshotFingerprint(*snap), commit_fp[obs.version])
          << "epoch " << obs.version << " drifted after later commits";
      query::QueryService service(snap.get(), 2);
      auto persons = service.Run(query::Language::kCypher,
                                 "MATCH (p:Person) RETURN p.name");
      ASSERT_TRUE(persons.ok());
      EXPECT_EQ(obs.persons, query::RowsToStrings(persons.value()))
          << "client " << c << " person rows diverged at epoch "
          << obs.version;
      auto liked = service.Run(
          query::Language::kCypher,
          "MATCH (p:Person)-[:LIKES]->(q:Post) RETURN q.content");
      ASSERT_TRUE(liked.ok());
      EXPECT_EQ(obs.liked, query::RowsToStrings(liked.value()))
          << "client " << c << " liked rows diverged at epoch "
          << obs.version;
      // Row-count invariant of this workload: one person/post/like pair
      // per epoch, so counts equal the pinned epoch number.
      EXPECT_EQ(obs.persons.size(), static_cast<size_t>(obs.version));
      EXPECT_EQ(obs.liked.size(), static_cast<size_t>(obs.version));
    }
  }
  // Sanity on coverage: the run observed at least one committed epoch
  // (readers that only ever saw the empty epoch 0 would vacuously pass
  // the parity checks above).
  bool any_committed_epoch_seen = false;
  for (int v = 1; v <= kEpochs; ++v) {
    any_committed_epoch_seen = any_committed_epoch_seen || epoch_seen[v];
  }
  EXPECT_TRUE(any_committed_epoch_seen);
}

}  // namespace
}  // namespace flex::storage
