#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "lang/cypher.h"
#include "lang/gremlin.h"
#include "optimizer/optimizer.h"
#include "query/interpreter.h"
#include "query/service.h"
#include "storage/vineyard/vineyard_store.h"

namespace flex::query {
namespace {

/// E-commerce graph: 4 Buyers, 4 Items, KNOWS among buyers, BUY edges
/// with dates. Buyer 1 knows 2; 2 knows 3; buys form co-purchases.
PropertyGraphData ShopData() {
  PropertyGraphData data;
  label_t buyer =
      data.schema
          .AddVertexLabel("Buyer", {{"username", PropertyType::kString},
                                    {"credits", PropertyType::kInt64}})
          .value();
  label_t item =
      data.schema.AddVertexLabel("Item", {{"price", PropertyType::kDouble}})
          .value();
  label_t knows = data.schema.AddEdgeLabel("KNOWS", buyer, buyer, {}).value();
  label_t buy = data.schema
                    .AddEdgeLabel("BUY", buyer, item,
                                  {{"date", PropertyType::kInt64}})
                    .value();
  const char* names[] = {"A1", "B2", "C3", "D4"};
  for (oid_t i = 1; i <= 4; ++i) {
    data.AddVertex(buyer, i,
                   {PropertyValue(names[i - 1]), PropertyValue(i * 10)});
  }
  for (oid_t i = 101; i <= 104; ++i) {
    data.AddVertex(item, i, {PropertyValue(0.5 * (i - 100))});
  }
  data.AddEdge(knows, 1, 2, {});
  data.AddEdge(knows, 2, 3, {});
  // Buys: 1->101@d1, 2->101@d3, 2->102@d4, 3->102@d9, 4->103@d5, 1->103@d2.
  data.AddEdge(buy, 1, 101, {PropertyValue(int64_t{1})});
  data.AddEdge(buy, 2, 101, {PropertyValue(int64_t{3})});
  data.AddEdge(buy, 2, 102, {PropertyValue(int64_t{4})});
  data.AddEdge(buy, 3, 102, {PropertyValue(int64_t{9})});
  data.AddEdge(buy, 4, 103, {PropertyValue(int64_t{5})});
  data.AddEdge(buy, 1, 103, {PropertyValue(int64_t{2})});
  return data;
}

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = storage::VineyardStore::Build(ShopData()).value();
    graph_ = store_->GetGrinHandle();
  }

  Result<std::vector<ir::Row>> RunCypher(const std::string& text,
                                         std::vector<PropertyValue> params = {},
                                         bool optimize = true) {
    auto plan = lang::ParseCypher(text, graph_->schema());
    if (!plan.ok()) return plan.status();
    Interpreter interp(graph_.get());
    ExecOptions opts;
    opts.params = std::move(params);
    if (!optimize) return interp.Run(plan.value(), opts);
    auto catalog = optimizer::Catalog::Build(*graph_);
    ir::Plan optimized = optimizer::Optimize(plan.value(), &catalog);
    return interp.Run(optimized, opts);
  }

  std::unique_ptr<storage::VineyardStore> store_;
  std::unique_ptr<grin::GrinGraph> graph_;
};

// --------------------------------------------------------------- Cypher

TEST_F(QueryTest, SimpleScanWithFilter) {
  auto rows = RunCypher(
      "MATCH (b:Buyer) WHERE b.credits >= 30 RETURN b.username "
      "ORDER BY b.username");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  auto lines = RowsToStrings(rows.value());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "C3");
  EXPECT_EQ(lines[1], "D4");
}

TEST_F(QueryTest, PropertyMapFilterInNode) {
  auto rows = RunCypher("MATCH (b:Buyer {username: 'B2'}) RETURN b.credits");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(std::get<PropertyValue>(rows.value()[0][0]).AsInt64(), 20);
}

TEST_F(QueryTest, OneHopExpand) {
  // Items purchased by friends of buyer 1 (the paper's Figure 5 query).
  auto rows = RunCypher(
      "MATCH (a:Buyer {id: 1})-[:KNOWS]->(b:Buyer)-[:BUY]->(c:Item) "
      "RETURN c.price ORDER BY c.price");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  auto lines = RowsToStrings(rows.value());
  ASSERT_EQ(lines.size(), 2u);  // Buyer 2 bought items 101 and 102.
  EXPECT_EQ(std::get<PropertyValue>(rows.value()[0][0]).AsDouble(), 0.5);
  EXPECT_EQ(std::get<PropertyValue>(rows.value()[1][0]).AsDouble(), 1.0);
}

TEST_F(QueryTest, ReverseAndUndirectedHops) {
  // Who bought item 101? (reverse expansion)
  auto rows = RunCypher(
      "MATCH (i:Item {id: 101})<-[:BUY]-(b:Buyer) RETURN b.username "
      "ORDER BY b.username");
  ASSERT_TRUE(rows.ok());
  auto lines = RowsToStrings(rows.value());
  EXPECT_EQ(lines, (std::vector<std::string>{"A1", "B2"}));

  // Undirected KNOWS around buyer 2: buyers 1 and 3.
  auto rows2 = RunCypher(
      "MATCH (b:Buyer {id: 2})-[:KNOWS]-(f:Buyer) RETURN f.username "
      "ORDER BY f.username");
  ASSERT_TRUE(rows2.ok());
  EXPECT_EQ(RowsToStrings(rows2.value()),
            (std::vector<std::string>{"A1", "C3"}));
}

TEST_F(QueryTest, CoPurchasePatternWithCycleClose) {
  // Co-purchasers: (a)-[:BUY]->(i)<-[:BUY]-(b), a fixed to 1.
  auto rows = RunCypher(
      "MATCH (a:Buyer {id: 1})-[:BUY]->(i:Item)<-[:BUY]-(b:Buyer) "
      "WHERE b.id <> 1 RETURN b.username, i.id ORDER BY b.username");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  auto lines = RowsToStrings(rows.value());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "B2 | 101");  // Via item 101.
  EXPECT_EQ(lines[1], "D4 | 103");  // Via item 103.
}

TEST_F(QueryTest, AggregationWithGrouping) {
  auto rows = RunCypher(
      "MATCH (b:Buyer)-[:BUY]->(i:Item) "
      "RETURN b.username, count(i) AS purchases, sum(i.price) AS total "
      "ORDER BY b.username");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  auto lines = RowsToStrings(rows.value());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "A1 | 2 | 2");      // Items 101 (0.5) + 103 (1.5).
  EXPECT_EQ(lines[1], "B2 | 2 | 1.500000");  // 0.5 + 1.0.
}

TEST_F(QueryTest, EdgePropertiesAndArithmetic) {
  // Pairs buying the same item within 2 days.
  auto rows = RunCypher(
      "MATCH (a:Buyer)-[b1:BUY]->(i:Item)<-[b2:BUY]-(s:Buyer) "
      "WHERE a.id < s.id AND b1.date - b2.date < 2 AND "
      "b2.date - b1.date < 2 RETURN a.id, s.id, i.id ORDER BY a.id");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // 1 & 2 on item 101: dates 1 vs 3 -> diff 2, not < 2. Excluded.
  // 2 & 3 on 102: 4 vs 9 -> no. 1 & 4 on 103: 2 vs 5 -> no.
  EXPECT_TRUE(rows.value().empty());

  auto rows2 = RunCypher(
      "MATCH (a:Buyer)-[b1:BUY]->(i:Item)<-[b2:BUY]-(s:Buyer) "
      "WHERE a.id < s.id AND b1.date - b2.date < 3 AND "
      "b2.date - b1.date < 3 RETURN a.id, s.id, i.id");
  ASSERT_TRUE(rows2.ok());
  ASSERT_EQ(rows2.value().size(), 1u);  // Now 1 & 2 via 101 qualify.
  EXPECT_EQ(RowsToStrings(rows2.value())[0], "1 | 2 | 101");
}

TEST_F(QueryTest, InListAndParameters) {
  auto rows = RunCypher(
      "MATCH (b:Buyer) WHERE b.id IN [2, 4, 9] RETURN b.id ORDER BY b.id");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(RowsToStrings(rows.value()),
            (std::vector<std::string>{"2", "4"}));

  auto rows2 = RunCypher(
      "MATCH (b:Buyer {id: $0})-[:BUY]->(i:Item) RETURN count(i)",
      {PropertyValue(int64_t{2})});
  ASSERT_TRUE(rows2.ok());
  EXPECT_EQ(RowsToStrings(rows2.value())[0], "2");
}

TEST_F(QueryTest, MultiStageWithPipeline) {
  // The fraud-detection query shape: two MATCH..WITH stages + threshold.
  const std::string query =
      "MATCH (v:Buyer {id: $0})-[b1:BUY]->(:Item)<-[b2:BUY]-(s:Buyer) "
      "WHERE s.id IN [2, 4] WITH v, count(s) AS cnt1 "
      "MATCH (v)-[:KNOWS]-(f:Buyer), (f)-[b3:BUY]->(:Item)<-[b4:BUY]-(t:Buyer) "
      "WHERE t.id IN [1, 3] WITH v, cnt1, count(t) AS cnt2 "
      "WHERE 1 * cnt1 + 2 * cnt2 > 2 RETURN id(v), cnt1, cnt2";
  auto rows = RunCypher(query, {PropertyValue(int64_t{1})});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // v=1: direct co-purchasers in seeds {2,4}: item101 -> s=2; item103 ->
  // s=4 => cnt1=2. Friends of 1: f=2 (KNOWS undirected). f=2 buys
  // 101, 102; co-purchasers in {1,3}: 101 -> 1; 102 -> 3 => cnt2=2.
  // Score 1*2 + 2*2 = 6 > 2 -> alert row.
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(RowsToStrings(rows.value())[0], "1 | 2 | 2");
}

TEST_F(QueryTest, ParseErrors) {
  EXPECT_EQ(RunCypher("MATCH (a:Nope) RETURN a").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(RunCypher("MATCH (a:Buyer) WHERE x.id = 1 RETURN a")
                .status()
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(RunCypher("MATCH (a:Buyer)").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(RunCypher("FROB (a)").status().code(), StatusCode::kParseError);
}

// -------------------------------------------------------------- Gremlin

TEST_F(QueryTest, GremlinTraversal) {
  auto plan = lang::ParseGremlin(
      "g.V().hasLabel('Buyer').has('id', 1).out('KNOWS').out('BUY')"
      ".values('price')",
      graph_->schema());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Interpreter interp(graph_.get());
  auto rows = interp.Run(plan.value());
  ASSERT_TRUE(rows.ok());
  std::vector<double> prices;
  for (const auto& row : rows.value()) {
    prices.push_back(std::get<PropertyValue>(row[0]).AsDouble());
  }
  std::sort(prices.begin(), prices.end());
  EXPECT_EQ(prices, (std::vector<double>{0.5, 1.0}));
}

TEST_F(QueryTest, GremlinCountDedupLimit) {
  auto plan = lang::ParseGremlin(
      "g.V().hasLabel('Item').in('BUY').dedup().count()", graph_->schema());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Interpreter interp(graph_.get());
  auto rows = interp.Run(plan.value());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(RowsToStrings(rows.value())[0], "4");  // All four buyers buy.

  auto plan2 = lang::ParseGremlin("g.V().hasLabel('Buyer').limit(2).count()",
                                  graph_->schema());
  auto rows2 = interp.Run(plan2.value());
  EXPECT_EQ(RowsToStrings(rows2.value())[0], "2");
}

TEST_F(QueryTest, GremlinOrderByAndPredicates) {
  auto plan = lang::ParseGremlin(
      "g.V().hasLabel('Buyer').has('credits', gt(10)).order().by('credits', "
      "desc).values('username')",
      graph_->schema());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Interpreter interp(graph_.get());
  auto rows = interp.Run(plan.value());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(RowsToStrings(rows.value()),
            (std::vector<std::string>{"D4", "C3", "B2"}));
}

TEST_F(QueryTest, GremlinAndCypherAgree) {
  // The paper's Figure 5 pair: same semantics through both front ends.
  auto gremlin_plan = lang::ParseGremlin(
      "g.V().hasLabel('Buyer').has('id', 1).out('KNOWS').out('BUY')"
      ".values('price')",
      graph_->schema());
  ASSERT_TRUE(gremlin_plan.ok());
  Interpreter interp(graph_.get());
  auto g_rows = interp.Run(gremlin_plan.value()).value();

  auto c_rows = RunCypher(
                    "MATCH (a:Buyer {id: 1})-[:KNOWS]->(b:Buyer)"
                    "-[:BUY]->(c:Item) RETURN c.price")
                    .value();
  auto sorted = [](std::vector<ir::Row> rows) {
    auto lines = RowsToStrings(rows);
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(sorted(g_rows), sorted(c_rows));
}

// ------------------------------------------------------------ Optimizer

TEST_F(QueryTest, FusionPreservesResults) {
  const std::string query =
      "MATCH (a:Buyer {id: 1})-[:KNOWS]->(b:Buyer)-[:BUY]->(c:Item) "
      "RETURN c.price ORDER BY c.price";
  auto logical = lang::ParseCypher(query, graph_->schema()).value();
  // Unfused logical plan has EXPAND_EDGE ops; fused one has none.
  optimizer::OptimizerOptions no_fuse;
  no_fuse.edge_vertex_fusion = false;
  no_fuse.cbo = false;
  optimizer::OptimizerOptions fuse;
  fuse.cbo = false;
  auto catalog = optimizer::Catalog::Build(*graph_);
  ir::Plan unfused = optimizer::Optimize(logical, &catalog, no_fuse);
  ir::Plan fused = optimizer::Optimize(logical, &catalog, fuse);

  size_t unfused_pairs = 0, fused_expands = 0;
  for (const auto& op : unfused.ops) {
    unfused_pairs += op.kind == ir::OpKind::kExpandEdge;
  }
  for (const auto& op : fused.ops) {
    fused_expands += op.kind == ir::OpKind::kExpand;
    EXPECT_NE(op.kind, ir::OpKind::kExpandEdge) << fused.ToString();
  }
  EXPECT_EQ(unfused_pairs, 2u);
  EXPECT_EQ(fused_expands, 2u);

  Interpreter interp(graph_.get());
  EXPECT_EQ(RowsToStrings(interp.Run(unfused).value()),
            RowsToStrings(interp.Run(fused).value()));
}

TEST_F(QueryTest, FusionSkipsReferencedEdges) {
  // b1 is referenced by the WHERE: its pair must NOT fuse.
  const std::string query =
      "MATCH (a:Buyer)-[b1:BUY]->(i:Item) WHERE b1.date > 3 "
      "RETURN a.id, i.id ORDER BY a.id";
  auto logical = lang::ParseCypher(query, graph_->schema()).value();
  ir::Plan optimized = optimizer::Optimize(logical, nullptr);
  bool has_pair = false;
  for (const auto& op : optimized.ops) {
    has_pair |= op.kind == ir::OpKind::kExpandEdge;
  }
  EXPECT_TRUE(has_pair);
  Interpreter interp(graph_.get());
  auto rows = interp.Run(optimized).value();
  EXPECT_EQ(RowsToStrings(rows),
            (std::vector<std::string>{"2 | 102", "3 | 102", "4 | 103"}));
}

TEST_F(QueryTest, FilterPushShrinksPlanAndPreservesResults) {
  const std::string query =
      "MATCH (a:Buyer)-[:BUY]->(i:Item) WHERE a.credits > 15 "
      "RETURN a.id, i.id ORDER BY a.id, i.id";
  auto logical = lang::ParseCypher(query, graph_->schema()).value();
  optimizer::OptimizerOptions push;
  push.cbo = false;
  optimizer::OptimizerOptions no_push = push;
  no_push.filter_push_into_match = false;
  ir::Plan pushed = optimizer::Optimize(logical, nullptr, push);
  ir::Plan unpushed = optimizer::Optimize(logical, nullptr, no_push);

  size_t pushed_selects = 0, unpushed_selects = 0;
  for (const auto& op : pushed.ops) {
    pushed_selects += op.kind == ir::OpKind::kSelect;
  }
  for (const auto& op : unpushed.ops) {
    unpushed_selects += op.kind == ir::OpKind::kSelect;
  }
  EXPECT_LT(pushed_selects, unpushed_selects);

  Interpreter interp(graph_.get());
  EXPECT_EQ(RowsToStrings(interp.Run(pushed).value()),
            RowsToStrings(interp.Run(unpushed).value()));
}

TEST_F(QueryTest, CboReordersAndPreservesResults) {
  // Pattern written backwards: starts from all Items, the id filter sits
  // on the far end. CBO should restart from the filtered Buyer.
  const std::string query =
      "MATCH (i:Item)<-[:BUY]-(b:Buyer)<-[:KNOWS]-(a:Buyer) "
      "WHERE a.id = 1 RETURN i.id ORDER BY i.id";
  auto logical = lang::ParseCypher(query, graph_->schema()).value();
  auto catalog = optimizer::Catalog::Build(*graph_);
  optimizer::OptimizerOptions with_cbo;
  optimizer::OptimizerOptions no_cbo;
  no_cbo.cbo = false;
  ir::Plan cbo_plan = optimizer::Optimize(logical, &catalog, with_cbo);
  ir::Plan base_plan = optimizer::Optimize(logical, &catalog, no_cbo);

  // CBO must move the selective scan to the front: the first op's label
  // becomes Buyer instead of Item.
  const label_t buyer = graph_->schema().FindVertexLabel("Buyer").value();
  ASSERT_EQ(cbo_plan.ops[0].kind, ir::OpKind::kScan);
  EXPECT_EQ(cbo_plan.ops[0].label, buyer) << cbo_plan.ToString();

  Interpreter interp(graph_.get());
  EXPECT_EQ(RowsToStrings(interp.Run(cbo_plan).value()),
            RowsToStrings(interp.Run(base_plan).value()));
  EXPECT_EQ(RowsToStrings(interp.Run(cbo_plan).value()),
            (std::vector<std::string>{"101", "102"}));
}

// -------------------------------------------------------------- Engines

TEST_F(QueryTest, GaiaMatchesSingleThreaded) {
  QueryService service(graph_.get(), 4);
  const std::string query =
      "MATCH (b:Buyer)-[:BUY]->(i:Item) "
      "RETURN b.username, count(i) AS n ORDER BY b.username";
  auto gaia_rows = service.Run(Language::kCypher, query, EngineKind::kGaia);
  ASSERT_TRUE(gaia_rows.ok()) << gaia_rows.status().ToString();
  NaiveGraphDB naive(graph_.get());
  auto naive_rows = naive.Run(Language::kCypher, query);
  ASSERT_TRUE(naive_rows.ok());
  EXPECT_EQ(RowsToStrings(gaia_rows.value()),
            RowsToStrings(naive_rows.value()));
}

TEST_F(QueryTest, HiActorStoredProcedureThroughput) {
  QueryService service(graph_.get(), 3);
  ASSERT_TRUE(service
                  .RegisterProcedure(
                      "friend_items", Language::kCypher,
                      "MATCH (a:Buyer {id: $0})-[:KNOWS]-(b:Buyer)"
                      "-[:BUY]->(i:Item) RETURN count(i)")
                  .ok());
  std::vector<std::future<Result<std::vector<ir::Row>>>> futures;
  for (int i = 0; i < 200; ++i) {
    auto fut = service.hiactor().SubmitProcedure(
        "friend_items", {PropertyValue(int64_t{1 + i % 4})});
    ASSERT_TRUE(fut.ok());
    futures.push_back(std::move(fut).value());
  }
  size_t nonzero = 0;
  for (auto& fut : futures) {
    auto rows = fut.get();
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows.value().size(), 1u);
    nonzero +=
        std::get<PropertyValue>(rows.value()[0][0]).AsInt64() > 0 ? 1 : 0;
  }
  EXPECT_EQ(service.hiactor().completed(), 200u);
  EXPECT_GT(nonzero, 0u);
  EXPECT_FALSE(
      service.hiactor().SubmitProcedure("missing", {}).ok());
}

TEST_F(QueryTest, HiActorMatchesGaia) {
  QueryService service(graph_.get(), 2);
  const std::string query =
      "MATCH (a:Buyer {id: 2})-[:BUY]->(i:Item)<-[:BUY]-(b:Buyer) "
      "RETURN b.id ORDER BY b.id";
  auto a = service.Run(Language::kCypher, query, EngineKind::kGaia);
  auto b = service.Run(Language::kCypher, query, EngineKind::kHiActor);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(RowsToStrings(a.value()), RowsToStrings(b.value()));
}

TEST_F(QueryTest, VariableLengthPaths) {
  // KNOWS chain: 1 -> 2 -> 3. Paths of length 1..2 from buyer 1 reach
  // buyer 2 (1 hop) and buyer 3 (2 hops).
  auto rows = RunCypher(
      "MATCH (a:Buyer {id: 1})-[:KNOWS*1..2]->(b:Buyer) "
      "RETURN b.id ORDER BY b.id");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(RowsToStrings(rows.value()),
            (std::vector<std::string>{"2", "3"}));

  // Exact length *2 only reaches buyer 3.
  auto exact = RunCypher(
      "MATCH (a:Buyer {id: 1})-[:KNOWS*2]->(b:Buyer) RETURN b.id");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(RowsToStrings(exact.value()), (std::vector<std::string>{"3"}));

  // Undirected *1..2 from buyer 2 reaches 1 and 3 once each and, via
  // back-and-forth being forbidden (relationship uniqueness), nothing
  // else.
  auto both = RunCypher(
      "MATCH (a:Buyer {id: 2})-[:KNOWS*1..2]-(b:Buyer) "
      "RETURN b.id ORDER BY b.id");
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(RowsToStrings(both.value()),
            (std::vector<std::string>{"1", "3"}));
}

TEST_F(QueryTest, CountDistinct) {
  // Buyers who co-purchased with buyer 1 across any item: buyer 2 via
  // item 101 and buyer 4 via item 103 — and buyer 1 itself twice.
  auto plain = RunCypher(
      "MATCH (a:Buyer {id: 1})-[:BUY]->(i:Item)<-[:BUY]-(s:Buyer) "
      "RETURN count(s)");
  auto distinct = RunCypher(
      "MATCH (a:Buyer {id: 1})-[:BUY]->(i:Item)<-[:BUY]-(s:Buyer) "
      "RETURN count(DISTINCT s.id)");
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(RowsToStrings(plain.value())[0], "4");     // 1,2 via 101; 1,4 via 103.
  EXPECT_EQ(RowsToStrings(distinct.value())[0], "3");  // {1, 2, 4}.
}

// ----------------------------------------------------- Randomized check

TEST_F(QueryTest, RandomGraphTwoHopAgainstBruteForce) {
  // Property check on a random labeled graph: Cypher two-hop counts equal
  // brute-force counts computed directly on the raw data.
  PropertyGraphData data;
  label_t person = data.schema.AddVertexLabel("P", {}).value();
  label_t follows = data.schema.AddEdgeLabel("F", person, person, {}).value();
  const int n = 60;
  Rng rng(33);
  std::vector<std::pair<oid_t, oid_t>> edges;
  for (oid_t v = 0; v < n; ++v) data.AddVertex(person, v, {});
  for (int e = 0; e < 300; ++e) {
    oid_t a = static_cast<oid_t>(rng.Uniform(n));
    oid_t b = static_cast<oid_t>(rng.Uniform(n));
    data.AddEdge(follows, a, b, {});
    edges.push_back({a, b});
  }
  auto store = storage::VineyardStore::Build(data).value();
  auto g = store->GetGrinHandle();
  QueryService service(g.get(), 2);

  for (oid_t probe : {oid_t{0}, oid_t{7}, oid_t{42}}) {
    auto rows = service.Run(
        Language::kCypher,
        "MATCH (a:P {id: " + std::to_string(probe) +
            "})-[:F]->(b:P)-[:F]->(c:P) RETURN count(c)");
    ASSERT_TRUE(rows.ok());
    int64_t got = std::get<PropertyValue>(rows.value()[0][0]).AsInt64();
    int64_t want = 0;
    for (const auto& [a, b] : edges) {
      if (a != probe) continue;
      for (const auto& [c, d] : edges) {
        if (c == b) ++want;
      }
    }
    EXPECT_EQ(got, want) << "probe " << probe;
  }
}

// ------------------------------------------------------- retry backoff

TEST(RetryBackoffTest, JitteredSleepStaysInsideBounds) {
  RunOptions options;
  options.retry_backoff = std::chrono::milliseconds(10);
  options.retry_backoff_max = std::chrono::milliseconds(100);
  for (uint64_t seed : {1u, 7u, 23u, 101u, 9999u}) {
    Rng rng(seed);
    for (int attempt = 0; attempt < 12; ++attempt) {
      // Pre-jitter base: 10ms doubled per attempt, saturating at the cap.
      int64_t base = 10;
      for (int i = 0; i < attempt && base < 100; ++i) base *= 2;
      base = std::min<int64_t>(base, 100);
      const auto sleep = RetryBackoffFor(options, attempt, &rng);
      // Jitter is +-25%, then clamped to [1ms, retry_backoff_max].
      const int64_t lo = std::max<int64_t>(1, (base * 3) / 4);
      const int64_t hi = std::min<int64_t>(100, (base * 5 + 3) / 4);
      EXPECT_GE(sleep.count(), lo) << "seed " << seed << " attempt "
                                   << attempt;
      EXPECT_LE(sleep.count(), hi) << "seed " << seed << " attempt "
                                   << attempt;
    }
  }
}

TEST(RetryBackoffTest, NeverExceedsCapAndNeverSleepsZero) {
  RunOptions options;
  options.retry_backoff = std::chrono::milliseconds(0);  // Degenerate base.
  options.retry_backoff_max = std::chrono::milliseconds(4);
  Rng rng(3);
  for (int attempt = 0; attempt < 40; ++attempt) {
    const auto sleep = RetryBackoffFor(options, attempt, &rng);
    EXPECT_GE(sleep.count(), 1);
    EXPECT_LE(sleep.count(), 4);
  }
  // A cap below the base still wins.
  options.retry_backoff = std::chrono::milliseconds(50);
  options.retry_backoff_max = std::chrono::milliseconds(8);
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_LE(RetryBackoffFor(options, attempt, &rng).count(), 8);
  }
}

TEST(RetryBackoffTest, SameSeedSameSleeps) {
  RunOptions options;
  options.retry_backoff = std::chrono::milliseconds(5);
  Rng a(42), b(42), c(43);
  std::vector<int64_t> sa, sb, sc;
  for (int attempt = 0; attempt < 6; ++attempt) {
    sa.push_back(RetryBackoffFor(options, attempt, &a).count());
    sb.push_back(RetryBackoffFor(options, attempt, &b).count());
    sc.push_back(RetryBackoffFor(options, attempt, &c).count());
  }
  EXPECT_EQ(sa, sb);  // Reproducible: tests can pin retry_jitter_seed.
  EXPECT_NE(sa, sc);  // Different seeds desynchronize (whp).
}

}  // namespace
}  // namespace flex::query
