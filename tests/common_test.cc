#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/barrier.h"
#include "common/crc32.h"
#include "common/queue.h"
#include "common/random.h"
#include "common/stable_vector.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/varint.h"

namespace flex {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("vertex 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: vertex 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDataLoss); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

// Guards the name table against drift: a newly added StatusCode that
// reuses (copy-pastes) an existing case label would silently alias two
// codes in every log line and test failure message.
TEST(StatusTest, AllCodeNamesDistinct) {
  std::set<std::string> names;
  int count = 0;
  // Walk past the last known code until the table answers "Unknown", so
  // codes added after kDataLoss are still covered without editing this
  // test.
  for (int c = 0; c < 64; ++c) {
    const char* name = StatusCodeName(static_cast<StatusCode>(c));
    if (std::string(name) == "Unknown") break;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
    ++count;
  }
  EXPECT_EQ(count, static_cast<int>(StatusCode::kDataLoss) + 1)
      << "StatusCodeName has a gap before the last enumerator";
}

TEST(StatusTest, RobustnessFactoriesCarryTheirCodes) {
  EXPECT_EQ(Status::Cancelled("c").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("d").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("r").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DataLoss("l").code(), StatusCode::kDataLoss);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalve(int x, int* out) {
  FLEX_ASSIGN_OR_RETURN(*out, HalveEven(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalve(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalve(3, &out).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Varint

TEST(VarintTest, RoundTripSmall) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 0);
  PutVarint64(&buf, 127);
  PutVarint64(&buf, 128);
  size_t pos = 0;
  uint64_t v = 99;
  ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &v));
  EXPECT_EQ(v, 127u);
  ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &v));
  EXPECT_EQ(v, 128u);
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, SmallValuesAreOneByte) {
  EXPECT_EQ(VarintLength(0), 1u);
  EXPECT_EQ(VarintLength(127), 1u);
  EXPECT_EQ(VarintLength(128), 2u);
  EXPECT_EQ(VarintLength(UINT64_MAX), 10u);
}

TEST(VarintTest, TruncatedInputFails) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 1ull << 40);
  size_t pos = 0;
  uint64_t v;
  EXPECT_FALSE(GetVarint64(buf.data(), buf.size() - 1, &pos, &v));
}

TEST(VarintTest, ZigZagOrdering) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  for (int64_t x : {int64_t{0}, int64_t{-5}, int64_t{12345},
                    int64_t{-9876543210}, INT64_MIN, INT64_MAX}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(x)), x);
  }
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, GetParam());
  EXPECT_EQ(buf.size(), VarintLength(GetParam()));
  size_t pos = 0;
  uint64_t v = 0;
  ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &v));
  EXPECT_EQ(v, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull,
                                           16383ull, 16384ull, (1ull << 35),
                                           UINT64_MAX - 1, UINT64_MAX));

// Property test: seeded-random values around every 7-bit group boundary
// (where the encoded length changes) plus u32/u64 extremes round-trip,
// and encoded streams decode back in order.
TEST(VarintTest, RandomizedRoundTripAtGroupBoundaries) {
  Rng rng(2024);
  std::vector<uint64_t> values;
  for (int group = 1; group < 10; ++group) {
    const uint64_t boundary = 1ull << (7 * group);
    for (uint64_t delta : {uint64_t{0}, uint64_t{1}, uint64_t{2}}) {
      values.push_back(boundary - delta);
      values.push_back(boundary + delta);
    }
    // A few random values inside this length class.
    for (int i = 0; i < 16; ++i) {
      values.push_back((boundary >> 1) + rng.Uniform(boundary >> 1));
    }
  }
  values.push_back(uint64_t{UINT32_MAX} - 1);
  values.push_back(uint64_t{UINT32_MAX});
  values.push_back(uint64_t{UINT32_MAX} + 1);
  values.push_back(UINT64_MAX);

  std::vector<uint8_t> buf;
  for (uint64_t v : values) {
    const size_t before = buf.size();
    PutVarint64(&buf, v);
    ASSERT_EQ(buf.size() - before, VarintLength(v)) << v;
  }
  size_t pos = 0;
  for (uint64_t want : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &got));
    EXPECT_EQ(got, want);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, RandomizedSignedRoundTrip) {
  Rng rng(4048);
  std::vector<uint8_t> buf;
  std::vector<int64_t> values = {0, -1, 1, INT64_MIN, INT64_MAX,
                                 INT64_MIN + 1, INT64_MAX - 1};
  for (int i = 0; i < 200; ++i) {
    const uint64_t raw = rng.Next();
    values.push_back(static_cast<int64_t>(raw));
  }
  for (int64_t v : values) PutVarintSigned(&buf, v);
  size_t pos = 0;
  for (int64_t want : values) {
    int64_t got = 0;
    ASSERT_TRUE(GetVarintSigned(buf.data(), buf.size(), &pos, &got));
    EXPECT_EQ(got, want);
  }
  EXPECT_EQ(pos, buf.size());
}

// ------------------------------------------------------------------ CRC32

TEST(Crc32Test, GoldenVectors) {
  // The IEEE 802.3 check value: CRC-32 of the ASCII digits "123456789".
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(digits, sizeof(digits)), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0x00000000u);
  const uint8_t a[] = {'a'};
  EXPECT_EQ(Crc32(a, 1), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShotAtEverySplit) {
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  const uint32_t want = Crc32(data, sizeof(data));
  for (size_t split = 0; split <= sizeof(data); ++split) {
    uint32_t state = Crc32Init();
    state = Crc32Update(state, data, split);
    state = Crc32Update(state, data + split, sizeof(data) - split);
    EXPECT_EQ(Crc32Finalize(state), want) << "split at " << split;
  }
  // Byte-at-a-time equals one shot too.
  uint32_t state = Crc32Init();
  for (uint8_t byte : data) state = Crc32Update(state, &byte, 1);
  EXPECT_EQ(Crc32Finalize(state), want);
}

TEST(Crc32Test, SlicedKernelMatchesBytewiseReference) {
  // The slicing-by-8 kernel must agree with the Sarwate byte-at-a-time
  // reference for every length and alignment around the 8-byte block
  // boundary (where a sliced implementation's bugs live): lengths 0..64
  // starting at offsets 0..8 into a random buffer, plus a large buffer.
  Rng rng(4242);
  std::vector<uint8_t> data(64 + 9);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Uniform(256));
  for (size_t offset = 0; offset <= 8; ++offset) {
    for (size_t len = 0; len <= 64; ++len) {
      const uint32_t sliced =
          Crc32Finalize(Crc32Update(Crc32Init(), data.data() + offset, len));
      const uint32_t reference = Crc32Finalize(
          Crc32UpdateBytewise(Crc32Init(), data.data() + offset, len));
      ASSERT_EQ(sliced, reference) << "offset " << offset << " len " << len;
    }
  }
  std::vector<uint8_t> big(1 << 16);
  for (auto& b : big) b = static_cast<uint8_t>(rng.Uniform(256));
  EXPECT_EQ(Crc32(big.data(), big.size()),
            Crc32Finalize(Crc32UpdateBytewise(Crc32Init(), big.data(),
                                              big.size())));
}

TEST(Crc32Test, IncrementalSplitsCrossBlockBoundaries) {
  // Splitting mid-block forces the sliced kernel to mix block and tail
  // processing; every split of a 3-block buffer must match one shot.
  Rng rng(7);
  std::vector<uint8_t> data(24);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Uniform(256));
  const uint32_t want = Crc32(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t state = Crc32Init();
    state = Crc32Update(state, data.data(), split);
    state = Crc32Update(state, data.data() + split, data.size() - split);
    EXPECT_EQ(Crc32Finalize(state), want) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  Rng rng(99);
  std::vector<uint8_t> payload(64);
  for (auto& b : payload) b = static_cast<uint8_t>(rng.Uniform(256));
  const uint32_t clean = Crc32(payload.data(), payload.size());
  for (size_t bit = 0; bit < payload.size() * 8; bit += 13) {
    payload[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32(payload.data(), payload.size()), clean) << bit;
    payload[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
  EXPECT_EQ(Crc32(payload.data(), payload.size()), clean);
}

TEST(VarintTest, ScratchEncodeMatchesVectorAppendEverywhere) {
  // PutVarint64To (the bulk-encode primitive Send() builds messages with)
  // must emit byte-identical encodings to the vector append path, report
  // the VarintLength it consumed, and never exceed kMaxVarintLen64.
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             UINT64_MAX};
  for (uint64_t v : values) {
    uint8_t scratch[kMaxVarintLen64];
    const size_t n = PutVarint64To(scratch, v);
    EXPECT_EQ(n, VarintLength(v)) << v;
    ASSERT_LE(n, kMaxVarintLen64);
    std::vector<uint8_t> buf;
    PutVarint64(&buf, v);
    ASSERT_EQ(buf.size(), n) << v;
    EXPECT_EQ(std::memcmp(scratch, buf.data(), n), 0) << v;
    size_t pos = 0;
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(scratch, n, &pos, &got));
    EXPECT_EQ(got, v);
  }
}

TEST(VarintTest, TruncatedMidVarintAtEveryPrefix) {
  // A decoder fed any strict prefix of a multi-byte encoding must fail and
  // must not advance pos (so callers can safely retry after a refill).
  std::vector<uint8_t> buf;
  PutVarint64(&buf, UINT64_MAX);  // 10-byte maximum-length encoding.
  ASSERT_EQ(buf.size(), 10u);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    uint64_t v = 0;
    EXPECT_FALSE(GetVarint64(buf.data(), cut, &pos, &v)) << "cut=" << cut;
    EXPECT_EQ(pos, 0u) << "cut=" << cut;
  }
}

TEST(VarintTest, MaxLengthEncodingRoundTrips) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, UINT64_MAX);
  ASSERT_EQ(buf.size(), 10u);
  // Every byte but the last carries a continuation bit.
  for (size_t i = 0; i + 1 < buf.size(); ++i) EXPECT_TRUE(buf[i] & 0x80);
  EXPECT_FALSE(buf.back() & 0x80);
  size_t pos = 0;
  uint64_t v = 0;
  ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_EQ(pos, 10u);
}

TEST(VarintTest, OverlongContinuationRunFails) {
  // 11+ continuation bytes can never terminate a valid 64-bit varint; the
  // decoder must reject rather than shift past 63 bits.
  std::vector<uint8_t> buf(16, 0x80);
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(buf.data(), buf.size(), &pos, &v));
}

TEST(VarintTest, DecodeAtNonZeroPosRespectsBounds) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 7);
  PutVarint64(&buf, 300);
  size_t pos = 1;  // Start at the second value.
  uint64_t v = 0;
  ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &v));
  EXPECT_EQ(v, 300u);
  // One byte short of the second value's encoding.
  pos = 1;
  EXPECT_FALSE(GetVarint64(buf.data(), buf.size() - 1, &pos, &v));
}

TEST(VarintTest, SignedTruncatedFails) {
  std::vector<uint8_t> buf;
  PutVarintSigned(&buf, INT64_MIN);  // ZigZags to UINT64_MAX: 10 bytes.
  ASSERT_EQ(buf.size(), 10u);
  size_t pos = 0;
  int64_t v = 0;
  EXPECT_FALSE(GetVarintSigned(buf.data(), buf.size() - 1, &pos, &v));
  pos = 0;
  ASSERT_TRUE(GetVarintSigned(buf.data(), buf.size(), &pos, &v));
  EXPECT_EQ(v, INT64_MIN);
}

TEST(VarintTest, EmptyBufferFails) {
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(nullptr, 0, &pos, &v));
  EXPECT_EQ(pos, 0u);
}

// ---------------------------------------------------------------- Random

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIsInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(10), 10u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SkewConcentratesMassOnHead) {
  ZipfSampler zipf(1000, 1.2, 3);
  size_t head = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next() < 10) ++head;
  }
  // With s=1.2 the top-10 ranks should hold a large share of the mass.
  EXPECT_GT(head, kDraws / 4);
}

// ---------------------------------------------------------------- Strings

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitSingleToken) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, JoinInvertsSplit) {
  EXPECT_EQ(Join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_TRUE(StartsWith("MATCH (n)", "MATCH"));
  EXPECT_FALSE(StartsWith("MA", "MATCH"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_EQ(ToLower("GrEmLiN"), "gremlin");
  EXPECT_TRUE(EqualsIgnoreCase("RETURN", "return"));
  EXPECT_FALSE(EqualsIgnoreCase("RETURN", "returns"));
}

TEST(StringUtilTest, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
}

// ---------------------------------------------------------------- Queue

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.Push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(8);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, ProducerConsumerTransfersEverything) {
  BoundedQueue<int> q(4);
  constexpr int kItems = 2000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) q.Push(i);
    q.Close();
  });
  int64_t sum = 0;
  int count = 0;
  while (auto v = q.Pop()) {
    sum += *v;
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, static_cast<int64_t>(kItems) * (kItems - 1) / 2);
}

// ---------------------------------------------------------------- Pool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRangePartitionsDisjointly) {
  ThreadPool pool(4);
  std::vector<int> owner(103, -1);
  std::mutex mu;
  pool.ParallelForRange(103, [&](size_t w, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    for (size_t i = begin; i < end; ++i) {
      EXPECT_EQ(owner[i], -1);
      owner[i] = static_cast<int>(w);
    }
  });
  for (int o : owner) EXPECT_NE(o, -1);
}

TEST(ThreadPoolTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

// ---------------------------------------------------------------- Barrier

TEST(BarrierTest, SynchronizesRounds) {
  constexpr size_t kThreads = 4;
  constexpr int kRounds = 20;
  Barrier barrier(kThreads);
  std::atomic<int> round_counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> violation{false};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        ++round_counter;
        barrier.Await();
        // After the barrier every thread must have bumped the counter.
        if (round_counter.load() < (r + 1) * static_cast<int>(kThreads)) {
          violation = true;
        }
        barrier.Await();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(round_counter.load(), kRounds * static_cast<int>(kThreads));
}

TEST(BarrierTest, ExactlyOneLeaderPerGeneration) {
  constexpr size_t kThreads = 3;
  Barrier barrier(kThreads);
  std::atomic<int> leaders{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      if (barrier.Await()) ++leaders;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(leaders.load(), 1);
}

// ---------------------------------------------------------- StableVector

TEST(StableVectorTest, AppendsAcrossBlocks) {
  StableVector<int, 4, 64> v;
  for (int i = 0; i < 50; ++i) v.push_back(i * i);
  ASSERT_EQ(v.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(v[i], i * i);
}

TEST(StableVectorTest, AddressesAreStable) {
  StableVector<int, 2, 64> v;
  v.push_back(1);
  const int* first = &v[0];
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(first, &v[0]);  // No reallocation ever moves elements.
  EXPECT_EQ(*first, 1);
}

TEST(StableVectorTest, ConcurrentReadersSeeOnlyPublishedElements) {
  StableVector<uint64_t, 64> v;
  std::atomic<bool> stop{false};
  std::atomic<size_t> violations{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const size_t n = v.size();
      for (size_t i = 0; i < n; ++i) {
        // Writer publishes i+1 at slot i before bumping the size.
        if (v[i] != i + 1) violations.fetch_add(1);
      }
    }
  });
  for (uint64_t i = 0; i < 200000; ++i) v.push_back(i + 1);
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(v.size(), 200000u);
}

TEST(StableVectorTest, EmplaceDefaultThenMutate) {
  StableVector<std::vector<int>, 8> v;
  auto& slot = v.emplace_back();
  slot.push_back(42);
  EXPECT_EQ(v[0].size(), 1u);
  EXPECT_EQ(v[0][0], 42);
}

}  // namespace
}  // namespace flex
