#!/usr/bin/env python3
"""Aggregates `gcov -t` output into a line-coverage report.

Reads the concatenated annotated-source stream gcov prints to stdout
(`gcov -r -s <root> -t <gcda>...`), merges execution counts per source
line across every compilation unit that included the file, and writes:

  <outdir>/coverage-summary.txt   per-file table + totals
  <outdir>/index.html             the same table as a standalone page

Exits non-zero when aggregate line coverage over src/common/ falls below
the floor passed as the third argument (percent). Only first-party files
(src/, tests/, bench/, examples/) are counted; gcov's -r already dropped
system headers.

Usage: coverage_report.py <all.gcov> <outdir> <common-floor-percent>
"""

import html
import sys
from collections import defaultdict


def parse(stream):
    """Returns {source_path: {line_no: max_count_seen}}."""
    files = defaultdict(dict)
    current = None
    for raw in stream:
        # Annotated lines look like "   COUNT:  LINENO:source text".
        head, sep, _ = raw.partition(":")
        if not sep:
            continue
        rest = raw[len(head) + 1 :]
        lineno_text, sep, tail = rest.partition(":")
        if not sep:
            continue
        count = head.strip()
        try:
            lineno = int(lineno_text)
        except ValueError:
            continue
        if lineno == 0:
            if tail.startswith("Source:"):
                current = tail[len("Source:") :].strip()
            continue
        if current is None or count == "-":
            continue
        # "#####" (never executed) and "=====" (unexecuted exceptional
        # path) are instrumented-but-zero; anything else is a count,
        # possibly suffixed ("12*" for unexecuted-block markers).
        if count in ("#####", "====="):
            executed = 0
        else:
            try:
                executed = int(count.rstrip("*"))
            except ValueError:
                continue
        lines = files[current]
        lines[lineno] = max(lines.get(lineno, 0), executed)
    return files


def first_party(path):
    return path.startswith(("src/", "tests/", "bench/", "examples/"))


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    gcov_path, outdir, floor = sys.argv[1], sys.argv[2], float(sys.argv[3])

    with open(gcov_path, errors="replace") as f:
        files = {p: v for p, v in parse(f).items() if first_party(p)}
    if not files:
        sys.exit("coverage_report.py: no first-party coverage data found")

    rows = []  # (path, covered, instrumented)
    for path in sorted(files):
        counts = files[path].values()
        rows.append((path, sum(1 for c in counts if c > 0), len(counts)))

    def pct(covered, total):
        return 100.0 * covered / total if total else 0.0

    total_cov = sum(r[1] for r in rows)
    total_ins = sum(r[2] for r in rows)
    common = [r for r in rows if r[0].startswith("src/common/")]
    common_cov = sum(r[1] for r in common)
    common_ins = sum(r[2] for r in common)
    common_pct = pct(common_cov, common_ins)

    table = ["%-60s %8s %8s %7s" % ("file", "covered", "lines", "pct")]
    for path, covered, instrumented in rows:
        table.append(
            "%-60s %8d %8d %6.1f%%"
            % (path, covered, instrumented, pct(covered, instrumented))
        )
    table.append("")
    table.append(
        "TOTAL       %d/%d lines = %.1f%%"
        % (total_cov, total_ins, pct(total_cov, total_ins))
    )
    table.append(
        "src/common/ %d/%d lines = %.1f%% (floor %.0f%%)"
        % (common_cov, common_ins, common_pct, floor)
    )
    summary = "\n".join(table) + "\n"

    with open(outdir + "/coverage-summary.txt", "w") as f:
        f.write(summary)

    cells = "".join(
        "<tr><td>%s</td><td>%d</td><td>%d</td><td>%.1f%%</td></tr>\n"
        % (html.escape(p), c, i, pct(c, i))
        for p, c, i in rows
    )
    with open(outdir + "/index.html", "w") as f:
        f.write(
            "<!doctype html><title>flex coverage</title>"
            "<h1>Line coverage</h1>"
            "<p>total %.1f%% &mdash; src/common/ %.1f%% (floor %.0f%%)</p>"
            "<table border=1 cellpadding=4>"
            "<tr><th>file</th><th>covered</th><th>lines</th><th>pct</th></tr>"
            "%s</table>" % (pct(total_cov, total_ins), common_pct, floor, cells)
        )

    sys.stdout.write(summary)
    if common_pct < floor:
        sys.exit(
            "coverage_report.py: src/common/ line coverage %.1f%% is below "
            "the %.0f%% floor" % (common_pct, floor)
        )
    print("coverage: src/common/ %.1f%% >= floor %.0f%%" % (common_pct, floor))


if __name__ == "__main__":
    main()
