#!/usr/bin/env bash
# Concurrency-correctness driver: builds and runs the tier-1 test suite
# under ASan+UBSan and under TSan, with the suppression files in
# tools/sanitizers/. Any sanitizer report fails the run (halt_on_error /
# -fno-sanitize-recover=all).
#
# The chaos pass rebuilds nothing extra: it reuses both sanitizer build
# trees and re-runs the chaos harness (tests/chaos_test) across several
# FLEX_CHAOS_SEED values, so every fault site is exercised under ASan+UBSan
# and under TSan with more than one injection schedule.
#
# The coverage pass builds with --coverage (gcov instrumentation), runs
# the full test suite, and aggregates per-file line coverage for
# src/common/ straight from gcov's intermediate output (no gcovr/lcov
# dependency). It writes build-cov/coverage/coverage-summary.txt plus a
# small HTML index and enforces a line-coverage floor on src/common/.
#
# The bench pass is the perf ratchet: it rebuilds the Exp-3 analytics
# bench unsanitized, runs the fragment-scaling sweep, and diffs the
# numbers against the committed BENCH_exp3_analytics.json via
# tools/bench_compare.py (>15% regression fails). It then runs the Exp-2
# row-vs-batched A/B (bench_exp2_snb_interactive --ab-only), which both
# ratchets against BENCH_exp2_snb.json and enforces the vectorization
# floor (batched >=1.4x geomean over row at 4 workers, fused plans). The
# sanitizer passes additionally run `bench_superstep_comm --smoke` and
# the Exp-2 A/B smoke so the superstep communication path and the
# columnar executor are exercised under ASan+UBSan and TSan outside of
# ctest; their ctest runs include exec_parity_test, which replays every
# SNB query fusion-on vs fusion-off across row/batched x 1/4 shards, so
# the fused pipelines are sanitizer-checked in both states.
#
# The serving pass is the multi-client harness: it builds
# tests/serving_test under ASan+UBSan and under TSan and runs it across
# the chaos seeds, so the plan cache, tenant admission, and the
# concurrent-vs-serial parity oracle are exercised with several workload
# draws under both sanitizers. The bench pass additionally runs
# bench_serving (closed- and open-loop SNB mixes) and ratchets its
# QPS/p99 against BENCH_serving.json with a wide threshold (0.5): the
# baseline holds conservative floors, not medians, because the open-loop
# tail jitters heavily on a shared host.
#
# The crash pass is the durability harness: it reuses the ASan+UBSan
# build tree and re-runs tests/crash_recovery_test across the chaos
# seeds, so the writer-kill -> recover -> fingerprint-compare cycle (WAL
# torn appends, lost fsyncs, mid-apply deaths on both dynamic backends)
# is exercised with several injection schedules under sanitizers.
#
# The static pass builds only the two analyzers (flexlint for per-line
# invariants, flexcheck for the cross-TU concurrency/propagation
# contracts — lock-order cycles, blocking-under-lock, runnable-coverage,
# registry-drift) and runs both over the tree. Fast enough for every
# commit; the same binaries also run as ctest tests in tier-1 and so are
# exercised inside the sanitizer passes automatically.
#
# The tidy pass runs clang-tidy (the curated .clang-tidy at the repo
# root: bugprone-*, concurrency-*, performance-*) over src/common/ and
# src/runtime/ using the compile database from the static build tree.
# clang-tidy is optional tooling — when it is not installed the pass
# prints a notice and succeeds, so `all` stays runnable on the
# gcc-only image.
#
# Usage:
#   tools/check.sh            # all passes (static, asan, tsan, chaos,
#                             # crash, coverage, bench; tidy when available)
#   tools/check.sh asan       # address+undefined only
#   tools/check.sh tsan       # thread only
#   tools/check.sh chaos      # multi-seed chaos harness under both sanitizers
#   tools/check.sh serving    # multi-seed serving suite under both sanitizers
#   tools/check.sh crash      # multi-seed crash-recovery suite under ASan+UBSan
#   tools/check.sh coverage   # gcov line coverage + floor on src/common/
#   tools/check.sh bench      # perf ratchet vs BENCH_exp3_analytics.json
#   tools/check.sh static     # flexlint + flexcheck over the tree
#   tools/check.sh tidy       # clang-tidy over src/common/ + src/runtime/
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SUPP="$ROOT/tools/sanitizers"
JOBS="$(nproc)"
MODES="${1:-all}"

run_pass() {
  local name="$1" sanitize="$2" builddir="$ROOT/build-$1"
  echo "=== $name: FLEX_SANITIZE=$sanitize -> $builddir ==="
  cmake -B "$builddir" -S "$ROOT" -DFLEX_SANITIZE="$sanitize" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$builddir" -j "$JOBS"
  (cd "$builddir" && ctest --output-on-failure -j "$JOBS")
  echo "--- $name: bench_superstep_comm --smoke ---"
  "$builddir/bench/bench_superstep_comm" --smoke
  echo "--- $name: bench_exp2_snb_interactive --ab-only --smoke ---"
  "$builddir/bench/bench_exp2_snb_interactive" --ab-only --smoke
}

run_bench() {
  local builddir="$ROOT/build-bench"
  echo "=== bench: perf ratchet vs BENCH_exp3_analytics.json ==="
  cmake -B "$builddir" -S "$ROOT" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$builddir" -j "$JOBS" --target bench_exp3_analytics_cpu
  "$builddir/bench/bench_exp3_analytics_cpu" --scaling-only \
      --json="$builddir/exp3_current.json"
  python3 "$ROOT/tools/bench_compare.py" \
      "$ROOT/BENCH_exp3_analytics.json" "$builddir/exp3_current.json"
  echo "=== bench: Exp-2 row-vs-batched A/B vs BENCH_exp2_snb.json ==="
  cmake --build "$builddir" -j "$JOBS" --target bench_exp2_snb_interactive
  # --min-geomean is the vectorization floor: the batched path (fused
  # plans, native columnar GROUP) must keep a >=1.4x geomean over
  # row-at-a-time on SNB interactive at 4 workers.
  "$builddir/bench/bench_exp2_snb_interactive" --ab-only \
      --json="$builddir/exp2_current.json" --min-geomean=1.4
  python3 "$ROOT/tools/bench_compare.py" \
      "$ROOT/BENCH_exp2_snb.json" "$builddir/exp2_current.json"
  echo "=== bench: serving ratchet vs BENCH_serving.json ==="
  cmake --build "$builddir" -j "$JOBS" --target bench_serving
  # BENCH_serving.json holds conservative floors (not measured medians):
  # the open-loop tail jitters 2-3x between runs on a shared host, so the
  # ratchet uses --threshold=0.5 — it catches a halved QPS or a doubled
  # p99, not scheduler noise.
  "$builddir/bench/bench_serving" \
      --json="$builddir/serving_current.json"
  python3 "$ROOT/tools/bench_compare.py" \
      "$ROOT/BENCH_serving.json" "$builddir/serving_current.json" \
      --threshold=0.5
}

CHAOS_SEEDS=(1 7 23 101)

# Minimum acceptable line coverage (%) over src/common/ — the layer whose
# test-first verification net this floor protects. Measured ~97% when the
# floor was set; the margin absorbs new code, not a coverage regression.
COMMON_COVERAGE_FLOOR=70

run_coverage() {
  local builddir="$ROOT/build-cov" covdir="$ROOT/build-cov/coverage"
  echo "=== coverage: gcov instrumentation -> $builddir ==="
  cmake -B "$builddir" -S "$ROOT" -DFLEX_COVERAGE=ON \
        -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build "$builddir" -j "$JOBS"
  (cd "$builddir" && ctest --output-on-failure -j "$JOBS")
  rm -rf "$covdir"
  mkdir -p "$covdir"
  # gcov's intermediate text, one stream for all objects (-t = stdout);
  # python merges counts per source line across the compilation units that
  # share a header or source file. No gcovr/lcov needed.
  (cd "$covdir" &&
   find "$builddir" -name '*.gcda' -print0 |
   xargs -0 -n 64 gcov -r -s "$ROOT" -t > all.gcov 2> gcov.log)
  python3 "$ROOT/tools/coverage_report.py" \
      "$covdir/all.gcov" "$covdir" "$COMMON_COVERAGE_FLOOR"
}

run_static() {
  local builddir="$ROOT/build-static"
  echo "=== static: flexlint + flexcheck over $ROOT ==="
  cmake -B "$builddir" -S "$ROOT" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  cmake --build "$builddir" -j "$JOBS" --target flexlint flexcheck
  "$builddir/tools/flexlint" "$ROOT"
  "$builddir/tools/flexcheck" "$ROOT"
}

run_tidy() {
  local builddir="$ROOT/build-static"
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "=== tidy: clang-tidy not installed, skipping (gcc-only image) ==="
    return 0
  fi
  echo "=== tidy: clang-tidy over src/common/ + src/runtime/ ==="
  # Reuse the static pass's build tree for compile_commands.json.
  if [ ! -f "$builddir/compile_commands.json" ]; then
    cmake -B "$builddir" -S "$ROOT" \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  find "$ROOT/src/common" "$ROOT/src/runtime" -name '*.cc' -print0 |
    xargs -0 -n 1 -P "$JOBS" clang-tidy -p "$builddir" --quiet
}

run_chaos() {
  local name="$1" sanitize="$2" builddir="$ROOT/build-$1"
  echo "=== chaos($name): FLEX_SANITIZE=$sanitize, seeds ${CHAOS_SEEDS[*]} ==="
  cmake -B "$builddir" -S "$ROOT" -DFLEX_SANITIZE="$sanitize" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$builddir" -j "$JOBS" --target chaos_test
  for seed in "${CHAOS_SEEDS[@]}"; do
    echo "--- chaos($name) seed=$seed ---"
    FLEX_CHAOS_SEED="$seed" "$builddir/tests/chaos_test"
  done
}

run_serving() {
  # Concurrent-serving suite under both sanitizers, across the chaos
  # seeds: serving_test's workload mix is drawn from FLEX_CHAOS_SEED, so
  # each seed exercises a different interleaving of clients, plan-cache
  # traffic, and quota contention. TSan is the pass that matters most
  # here — the admission CAS loop and the sharded LRU are lock-order- and
  # race-audited by it.
  local name sanitize builddir seed
  for name in asan tsan; do
    case "$name" in
      asan) sanitize="address,undefined" ;;
      tsan) sanitize="thread" ;;
    esac
    builddir="$ROOT/build-$name"
    echo "=== serving($name): FLEX_SANITIZE=$sanitize, seeds ${CHAOS_SEEDS[*]} ==="
    cmake -B "$builddir" -S "$ROOT" -DFLEX_SANITIZE="$sanitize" \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build "$builddir" -j "$JOBS" --target serving_test
    for seed in "${CHAOS_SEEDS[@]}"; do
      echo "--- serving($name) seed=$seed ---"
      FLEX_CHAOS_SEED="$seed" "$builddir/tests/serving_test"
    done
  done
}

run_crash() {
  local builddir="$ROOT/build-asan"
  echo "=== crash: ASan+UBSan crash recovery, seeds ${CHAOS_SEEDS[*]} ==="
  cmake -B "$builddir" -S "$ROOT" -DFLEX_SANITIZE="address,undefined" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$builddir" -j "$JOBS" --target crash_recovery_test
  for seed in "${CHAOS_SEEDS[@]}"; do
    echo "--- crash seed=$seed ---"
    (cd "$builddir/tests" &&
     FLEX_CHAOS_SEED="$seed" ./crash_recovery_test)
  done
}

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:suppressions=$SUPP/asan.supp"
export LSAN_OPTIONS="suppressions=$SUPP/lsan.supp"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$SUPP/ubsan.supp"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=$SUPP/tsan.supp"

case "$MODES" in
  asan) run_pass asan address,undefined ;;
  tsan) run_pass tsan thread ;;
  chaos)
    run_chaos asan address,undefined
    run_chaos tsan thread
    ;;
  serving) run_serving ;;
  crash) run_crash ;;
  coverage) run_coverage ;;
  bench) run_bench ;;
  static) run_static ;;
  tidy) run_tidy ;;
  all)
    # Static analysis first: it is the cheapest pass and fails fastest.
    run_static
    run_tidy
    run_pass asan address,undefined
    run_pass tsan thread
    run_chaos asan address,undefined
    run_chaos tsan thread
    run_serving
    run_crash
    run_coverage
    run_bench
    ;;
  *)
    echo "usage: tools/check.sh [asan|tsan|chaos|serving|crash|coverage|bench|static|tidy|all]" >&2
    exit 2
    ;;
esac

echo "=== check.sh: all requested passes clean ==="
