#!/usr/bin/env bash
# Concurrency-correctness driver: builds and runs the tier-1 test suite
# under ASan+UBSan and under TSan, with the suppression files in
# tools/sanitizers/. Any sanitizer report fails the run (halt_on_error /
# -fno-sanitize-recover=all).
#
# Usage:
#   tools/check.sh            # both passes
#   tools/check.sh asan       # address+undefined only
#   tools/check.sh tsan       # thread only
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SUPP="$ROOT/tools/sanitizers"
JOBS="$(nproc)"
MODES="${1:-all}"

run_pass() {
  local name="$1" sanitize="$2" builddir="$ROOT/build-$1"
  echo "=== $name: FLEX_SANITIZE=$sanitize -> $builddir ==="
  cmake -B "$builddir" -S "$ROOT" -DFLEX_SANITIZE="$sanitize" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$builddir" -j "$JOBS"
  (cd "$builddir" && ctest --output-on-failure -j "$JOBS")
}

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:suppressions=$SUPP/asan.supp"
export LSAN_OPTIONS="suppressions=$SUPP/lsan.supp"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$SUPP/ubsan.supp"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=$SUPP/tsan.supp"

case "$MODES" in
  asan) run_pass asan address,undefined ;;
  tsan) run_pass tsan thread ;;
  all)
    run_pass asan address,undefined
    run_pass tsan thread
    ;;
  *)
    echo "usage: tools/check.sh [asan|tsan|all]" >&2
    exit 2
    ;;
esac

echo "=== check.sh: all sanitizer passes clean ==="
