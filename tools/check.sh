#!/usr/bin/env bash
# Concurrency-correctness driver: builds and runs the tier-1 test suite
# under ASan+UBSan and under TSan, with the suppression files in
# tools/sanitizers/. Any sanitizer report fails the run (halt_on_error /
# -fno-sanitize-recover=all).
#
# The chaos pass rebuilds nothing extra: it reuses both sanitizer build
# trees and re-runs the chaos harness (tests/chaos_test) across several
# FLEX_CHAOS_SEED values, so every fault site is exercised under ASan+UBSan
# and under TSan with more than one injection schedule.
#
# Usage:
#   tools/check.sh            # all passes (asan, tsan, chaos)
#   tools/check.sh asan       # address+undefined only
#   tools/check.sh tsan       # thread only
#   tools/check.sh chaos      # multi-seed chaos harness under both sanitizers
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SUPP="$ROOT/tools/sanitizers"
JOBS="$(nproc)"
MODES="${1:-all}"

run_pass() {
  local name="$1" sanitize="$2" builddir="$ROOT/build-$1"
  echo "=== $name: FLEX_SANITIZE=$sanitize -> $builddir ==="
  cmake -B "$builddir" -S "$ROOT" -DFLEX_SANITIZE="$sanitize" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$builddir" -j "$JOBS"
  (cd "$builddir" && ctest --output-on-failure -j "$JOBS")
}

CHAOS_SEEDS=(1 7 23 101)

run_chaos() {
  local name="$1" sanitize="$2" builddir="$ROOT/build-$1"
  echo "=== chaos($name): FLEX_SANITIZE=$sanitize, seeds ${CHAOS_SEEDS[*]} ==="
  cmake -B "$builddir" -S "$ROOT" -DFLEX_SANITIZE="$sanitize" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$builddir" -j "$JOBS" --target chaos_test
  for seed in "${CHAOS_SEEDS[@]}"; do
    echo "--- chaos($name) seed=$seed ---"
    FLEX_CHAOS_SEED="$seed" "$builddir/tests/chaos_test"
  done
}

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:suppressions=$SUPP/asan.supp"
export LSAN_OPTIONS="suppressions=$SUPP/lsan.supp"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$SUPP/ubsan.supp"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=$SUPP/tsan.supp"

case "$MODES" in
  asan) run_pass asan address,undefined ;;
  tsan) run_pass tsan thread ;;
  chaos)
    run_chaos asan address,undefined
    run_chaos tsan thread
    ;;
  all)
    run_pass asan address,undefined
    run_pass tsan thread
    run_chaos asan address,undefined
    run_chaos tsan thread
    ;;
  *)
    echo "usage: tools/check.sh [asan|tsan|chaos|all]" >&2
    exit 2
    ;;
esac

echo "=== check.sh: all sanitizer passes clean ==="
