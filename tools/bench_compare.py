#!/usr/bin/env python3
"""Perf ratchet: diff fresh bench numbers against the committed baseline.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold=0.15]

Both files use the schema bench_exp3_analytics_cpu --json=PATH emits:

    {"bench": "...", "results": [{"name": "...", "ms": 12.3}, ...]}

Exits non-zero if any entry regressed by more than the threshold (default
15%, the bar set in ISSUE 4). Entries under the noise floor (5 ms) are
reported but never fail the run — on a shared 1-core host, sub-5ms
timings jitter far more than 15% between runs. Entries present in only
one file are reported as added/removed but do not fail; the ratchet
guards regressions on work both builds performed.
"""

import json
import sys

NOISE_FLOOR_MS = 5.0


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {r["name"]: float(r["ms"]) for r in doc["results"]}


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        sys.stderr.write(__doc__)
        return 2
    threshold = 0.15
    for a in argv[1:]:
        if a.startswith("--threshold="):
            threshold = float(a.split("=", 1)[1])

    baseline = load(args[0])
    current = load(args[1])

    failures = []
    print(f"{'benchmark':<24} {'baseline':>10} {'current':>10} {'delta':>8}")
    for name in sorted(baseline):
        if name not in current:
            print(f"{name:<24} {baseline[name]:>8.1f}ms {'(removed)':>10}")
            continue
        base, cur = baseline[name], current[name]
        delta = (cur - base) / base if base > 0 else 0.0
        flag = ""
        if delta > threshold:
            if base < NOISE_FLOOR_MS and cur < NOISE_FLOOR_MS * (1 + threshold):
                flag = "  (noise floor)"
            else:
                flag = "  REGRESSION"
                failures.append(name)
        print(f"{name:<24} {base:>8.1f}ms {cur:>8.1f}ms {delta:>+7.1%}{flag}")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<24} {'(added)':>10} {current[name]:>8.1f}ms")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{threshold:.0%}: {', '.join(failures)}")
        return 1
    print(f"\nOK: no benchmark regressed more than {threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
