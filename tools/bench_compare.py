#!/usr/bin/env python3
"""Perf ratchet: diff fresh bench numbers against the committed baseline.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold=0.15]

Both files use the schema the bench binaries emit with --json=PATH:

    {"bench": "...", "results": [{"name": "...", "ms": 12.3},
                                 {"name": "...", "qps": 4500.0}, ...]}

Each entry carries exactly one metric key: "ms" (latency — lower is
better) or "qps" (throughput — higher is better). A latency entry
regresses when current exceeds baseline by more than the threshold; a
throughput entry regresses when current falls short of baseline by more
than the threshold (the BENCH_serving.json p99 + QPS floors).

Exits non-zero if any entry regressed by more than the threshold (default
15%, the bar set in ISSUE 4). Latency entries under the noise floor
(5 ms) are reported but never fail the run — on a shared 1-core host,
sub-5ms timings jitter far more than 15% between runs. Entries present in
only one file are reported as added/removed but do not fail; the ratchet
guards regressions on work both builds performed.
"""

import json
import sys

NOISE_FLOOR_MS = 5.0


def load(path):
    """Returns {name: (kind, value)} with kind in {"ms", "qps"}."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for r in doc["results"]:
        if "qps" in r:
            out[r["name"]] = ("qps", float(r["qps"]))
        else:
            out[r["name"]] = ("ms", float(r["ms"]))
    return out


def fmt(kind, value):
    return f"{value:.1f}ms" if kind == "ms" else f"{value:.0f}qps"


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        sys.stderr.write(__doc__)
        return 2
    threshold = 0.15
    for a in argv[1:]:
        if a.startswith("--threshold="):
            threshold = float(a.split("=", 1)[1])

    baseline = load(args[0])
    current = load(args[1])

    failures = []
    print(f"{'benchmark':<24} {'baseline':>10} {'current':>10} {'delta':>8}")
    for name in sorted(baseline):
        kind, base = baseline[name]
        if name not in current:
            print(f"{name:<24} {fmt(kind, base):>10} {'(removed)':>10}")
            continue
        cur_kind, cur = current[name]
        if cur_kind != kind:
            print(f"{name:<24} metric kind changed "
                  f"({kind} -> {cur_kind})  REGRESSION")
            failures.append(name)
            continue
        delta = (cur - base) / base if base > 0 else 0.0
        # Latency regresses upward, throughput downward.
        regressed = delta > threshold if kind == "ms" else delta < -threshold
        flag = ""
        if regressed:
            if (kind == "ms" and base < NOISE_FLOOR_MS
                    and cur < NOISE_FLOOR_MS * (1 + threshold)):
                flag = "  (noise floor)"
            else:
                flag = "  REGRESSION"
                failures.append(name)
        print(f"{name:<24} {fmt(kind, base):>10} {fmt(kind, cur):>10} "
              f"{delta:>+7.1%}{flag}")
    for name in sorted(set(current) - set(baseline)):
        kind, cur = current[name]
        print(f"{name:<24} {'(added)':>10} {fmt(kind, cur):>10}")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{threshold:.0%}: {', '.join(failures)}")
        return 1
    print(f"\nOK: no benchmark regressed more than {threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
