#ifndef FLEX_TOOLS_FLEXCHECK_RULES_H_
#define FLEX_TOOLS_FLEXCHECK_RULES_H_

// The four flexcheck rules, run over a flexcheck::Model:
//
//   lock-order            cycles in the global lock acquisition graph
//                         (static deadlock detection)
//   blocking-under-lock   CondVar waits / pool joins / queue receives /
//                         sleeps while holding an unrelated mutex
//   runnable-coverage     unbounded or long loops in src/runtime|query|grape
//                         that never reach a CheckRunnable/deadline poll
//   registry-drift        fault sites, metric names, and span names that
//                         are used but unregistered, or registered but dead
//
// plus waiver-justification, which rejects `// flexlint: allow(<rule>)`
// markers that carry no justification. Every rule honors the allow()
// waiver at the offending line (or the line above it).

#include <string>
#include <vector>

#include "flexcheck/model.h"

namespace flexcheck {

struct Violation {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

std::vector<Violation> CheckLockOrder(const Model& m);
std::vector<Violation> CheckBlockingUnderLock(const Model& m);
std::vector<Violation> CheckRunnableCoverage(const Model& m);
std::vector<Violation> CheckRegistryDrift(const Model& m);
std::vector<Violation> CheckWaiverJustification(const Model& m);

/// All rules, sorted by file/line, deduplicated.
std::vector<Violation> RunAllRules(const Model& m);

/// Convenience: BuildModel + RunAllRules on `root`.
std::vector<Violation> AnalyzeTree(const std::string& root);

}  // namespace flexcheck

#endif  // FLEX_TOOLS_FLEXCHECK_RULES_H_
