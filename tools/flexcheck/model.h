#ifndef FLEX_TOOLS_FLEXCHECK_MODEL_H_
#define FLEX_TOOLS_FLEXCHECK_MODEL_H_

// flexcheck source model: a lightweight cross-TU view of src/ built by a
// comment-aware, statement-level scanner — no compiler needed. The model
// captures exactly what the rules in rules.h consume:
//
//   * every function definition (qualified name, file, line range),
//   * every lock acquisition (flex::MutexLock, std lock guards, manual
//     Lock()/Unlock()) with the held-lock stack at that point,
//   * every call made while holding a lock, and every blocking call
//     (CondVar waits, pool joins, queue ops, sleeps) with held locks,
//   * every loop in the runnable-coverage scope with its header shape,
//     body size, contained calls, and whether a deadline/cancel poll is
//     reachable,
//   * ACQUIRE/EXCLUDES thread-safety annotations (a declared promise that
//     the function acquires the named lock internally),
//   * the contract registries (fault sites, metric names, trace span
//     table) and every use site of those names across src/,
//   * `// flexlint: allow(<rule>)` waivers and whether they carry a
//     justification.
//
// Lock identity is resolved to a *type-level* name (Class::field, or
// file::function::name for locals) — instances of a class share a node in
// the acquisition graph, which is the standard lock-order abstraction.
// When a field name is ambiguous across classes the id degrades to a
// file-qualified name, which over-splits (never falsely merges) and so
// can only under-report cycles, never invent them.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace flexcheck {

/// One lock acquisition ordering edge: `held` was held when `acquired`
/// was taken at file:line.
struct OrderEdge {
  std::string held;
  std::string acquired;
  std::string file;
  size_t line = 0;
};

/// A call made while at least one lock was held.
struct CallUnderLock {
  std::vector<std::string> held;  ///< Innermost last.
  std::string callee;             ///< Simple (unqualified) callee name.
  std::string file;
  size_t line = 0;
};

/// A potentially blocking operation and the locks held around it.
struct BlockingEvent {
  enum class Kind {
    kCondWait,      ///< CondVar::Wait/WaitFor — `target` is the wait's guard.
    kBlockingCall,  ///< Pool/latch joins, queue ops, sleeps, Receive.
  };
  Kind kind = Kind::kBlockingCall;
  std::string what;    ///< Token that matched, e.g. "Wait", "Submit".
  std::string target;  ///< kCondWait: resolved guard lock id.
  std::vector<std::string> held;
  std::string file;
  size_t line = 0;
};

/// One loop inside a function (runnable-coverage raw material).
struct Loop {
  std::string file;
  size_t header_line = 0;
  size_t body_begin = 0;
  size_t body_end = 0;  ///< Line of the closing brace.
  std::string header;   ///< Normalized header text, e.g. "while (true)".
  bool unbounded = false;
  /// Body is nothing but a condition-variable wait (a parked predicate
  /// loop does no work; deadline enforcement belongs to its waker).
  bool wait_only = true;
  bool has_poll = false;  ///< CheckRunnable/HasExpired/Cancelled inline.
  size_t statements = 0;
  std::set<std::string> calls;  ///< Simple names called in the body.
};

struct Function {
  std::string qual_name;    ///< "Class::Name" or "Name".
  std::string simple_name;  ///< "Name".
  std::string file;
  size_t begin_line = 0;
  size_t end_line = 0;
  std::set<std::string> acquired_locks;  ///< Everything taken anywhere inside.
  std::vector<OrderEdge> order_edges;
  std::vector<CallUnderLock> calls_under_lock;
  std::set<std::string> calls;  ///< All simple callee names.
  std::vector<BlockingEvent> blocking;
  std::vector<Loop> loops;
  bool has_poll = false;  ///< Poll token anywhere in the body.
};

/// A `Mutex`/`std::mutex`/`std::shared_mutex` data member.
struct MutexDecl {
  std::string owner;  ///< Qualified class ("HiActorEngine::Shard").
  std::string field;
  std::string file;
  size_t line = 0;
};

/// FLEX_FAULT_POINT/FLEX_FAULT_INJECT use site.
struct FaultUse {
  std::string site;
  std::string file;
  size_t line = 0;
};

/// `metrics::k...` identifier use site.
struct MetricUse {
  std::string constant;  ///< e.g. "kQueriesTotal".
  std::string file;
  size_t line = 0;
};

/// ScopedSpan / BeginSpan use site with a literal (or literal-prefixed)
/// span name.
struct SpanUse {
  std::string name;  ///< Literal text, or literal prefix when concatenated.
  bool is_prefix = false;
  std::string category;  ///< Empty when not a literal.
  std::string file;
  size_t line = 0;
};

/// One `// flexlint: allow(<rule>)` marker.
struct AllowMarker {
  std::string rule;
  bool justified = false;
  std::string file;
  size_t line = 0;
};

/// One entry of the documented span table (common/trace_spans.h).
struct SpanSpecEntry {
  std::string name;
  std::string category;
  bool prefix = false;
  size_t line = 0;
};

struct Model {
  std::vector<Function> functions;
  std::vector<MutexDecl> mutexes;
  /// Simple function name -> indices into `functions`.
  std::map<std::string, std::vector<size_t>> by_simple_name;
  /// Function simple name -> lock ids promised by ACQUIRE/EXCLUDES
  /// annotations on its declaration.
  std::map<std::string, std::set<std::string>> annotation_locks;

  // --- registries (empty + flag=false when the file is absent, so the
  // model also loads fixture trees that only exercise one rule) ---
  bool has_fault_registry = false;
  std::vector<std::string> fault_registry;
  std::string fault_registry_file;
  size_t fault_registry_line = 0;

  bool has_metric_registry = false;
  std::map<std::string, std::string> metric_registry;  ///< kName -> "flex_...".
  std::map<std::string, size_t> metric_registry_lines;
  std::string metric_registry_file;

  bool has_span_table = false;
  std::vector<SpanSpecEntry> span_table;
  std::string span_table_file;

  // --- use sites ---
  std::vector<FaultUse> fault_uses;
  std::vector<MetricUse> metric_uses;
  std::vector<SpanUse> span_uses;
  /// FLEX_COUNTER_ADD("literal", ...)-style raw-string metric names.
  std::vector<MetricUse> raw_metric_literals;

  std::vector<AllowMarker> allow_markers;

  /// Raw (unstripped) lines per repo-relative file, for waiver lookups.
  std::map<std::string, std::vector<std::string>> raw_lines;

  /// True when `rule` is waived at file:line (marker on the line itself or
  /// on the immediately preceding line).
  bool IsWaived(const std::string& file, size_t line,
                const std::string& rule) const;
};

/// Scans `root`/src (every .h/.cc) and builds the model. `root` may be the
/// repo root or a fixture tree with the same shape.
Model BuildModel(const std::string& root);

}  // namespace flexcheck

#endif  // FLEX_TOOLS_FLEXCHECK_MODEL_H_
