#include "flexcheck/model.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace flexcheck {

namespace fs = std::filesystem;

namespace {

constexpr size_t kNoIndex = static_cast<size_t>(-1);

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// True when `tok` occurs in `s` with identifier boundaries on both sides.
bool ContainsToken(const std::string& s, const std::string& tok) {
  size_t pos = 0;
  while ((pos = s.find(tok, pos)) != std::string::npos) {
    bool lb = pos == 0 || !IsIdentChar(s[pos - 1]);
    size_t end = pos + tok.size();
    bool rb = end >= s.size() || !IsIdentChar(s[end]);
    if (lb && rb) return true;
    pos += tok.size();
  }
  return false;
}

/// Finds `tok` with identifier boundaries; returns npos when absent.
size_t FindToken(const std::string& s, const std::string& tok, size_t from) {
  size_t pos = from;
  while ((pos = s.find(tok, pos)) != std::string::npos) {
    bool lb = pos == 0 || !IsIdentChar(s[pos - 1]);
    size_t end = pos + tok.size();
    bool rb = end >= s.size() || !IsIdentChar(s[end]);
    if (lb && rb) return pos;
    pos += tok.size();
  }
  return std::string::npos;
}

std::string CollapseWs(const std::string& s) {
  std::string out;
  bool ws = false;
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ws = true;
      continue;
    }
    if (ws && !out.empty()) out += ' ';
    ws = false;
    out += c;
  }
  return out;
}

std::string RemoveWs(const std::string& s) {
  std::string out;
  for (char c : s)
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') out += c;
  return out;
}

/// Strips //, /* */ comments and blanks raw-string bodies; keeps ordinary
/// string/char literals (quotes and contents) so the statement scanner can
/// harvest them. Line count is preserved.
std::vector<std::string> StripComments(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  for (const std::string& line : raw) {
    std::string o;
    o.reserve(line.size());
    for (size_t i = 0; i < line.size();) {
      if (in_block) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        i += 2;
        continue;
      }
      if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"' &&
          (i == 0 || !IsIdentChar(line[i - 1]))) {
        // Raw string: blank the body (possibly spanning lines is not
        // supported per-line here; bodies in this repo are single-file
        // blocks that the scanner never needs). Emit an empty literal.
        size_t paren = line.find('(', i + 2);
        if (paren == std::string::npos) {
          o += "\"\"";
          break;
        }
        std::string delim = line.substr(i + 2, paren - (i + 2));
        std::string closer = ")" + delim + "\"";
        size_t end = line.find(closer, paren + 1);
        o += "\"\"";
        if (end == std::string::npos) break;  // body continues: drop rest.
        i = end + closer.size();
        continue;
      }
      if (c == '"' || c == '\'') {
        char q = c;
        o += c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\' && i + 1 < line.size()) {
            o += line[i];
            o += line[i + 1];
            i += 2;
            continue;
          }
          o += line[i];
          if (line[i] == q) {
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      o += c;
      ++i;
    }
    out.push_back(std::move(o));
  }
  return out;
}

/// Extracts the contents of every "..." literal in `s`, in order.
std::vector<std::string> StringLiterals(const std::string& s) {
  std::vector<std::string> out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '"') continue;
    std::string lit;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      lit += s[i];
      ++i;
    }
    out.push_back(lit);
  }
  return out;
}

/// Splits a balanced argument list (text between one call's parens) on
/// top-level commas.
std::vector<std::string> SplitArgs(const std::string& args) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  bool in_str = false;
  for (size_t i = 0; i < args.size(); ++i) {
    char c = args[i];
    if (in_str) {
      cur += c;
      if (c == '\\' && i + 1 < args.size()) {
        cur += args[++i];
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
      cur += c;
      continue;
    }
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(Trim(cur));
      cur.clear();
      continue;
    }
    cur += c;
  }
  if (!Trim(cur).empty()) out.push_back(Trim(cur));
  return out;
}

/// Returns the argument list of the first call to `fn` in `s` (text inside
/// the matching parens), or nullopt-ish empty + found=false.
bool CallArgs(const std::string& s, const std::string& fn, size_t from,
              std::string* out, size_t* call_pos) {
  size_t pos = FindToken(s, fn, from);
  if (pos == std::string::npos) return false;
  size_t p = s.find('(', pos + fn.size());
  if (p == std::string::npos || Trim(s.substr(pos + fn.size(), p - pos - fn.size())) != "")
    return false;
  int depth = 0;
  bool in_str = false;
  for (size_t i = p; i < s.size(); ++i) {
    char c = s[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '(') ++depth;
    if (c == ')') {
      --depth;
      if (depth == 0) {
        *out = s.substr(p + 1, i - p - 1);
        if (call_pos != nullptr) *call_pos = pos;
        return true;
      }
    }
  }
  return false;
}

std::string LastIdentifier(const std::string& s) {
  size_t end = s.size();
  while (end > 0 && !IsIdentChar(s[end - 1])) --end;
  size_t begin = end;
  while (begin > 0 && IsIdentChar(s[begin - 1])) --begin;
  return s.substr(begin, end - begin);
}

std::string FirstIdentifier(const std::string& s) {
  size_t begin = 0;
  while (begin < s.size() && !IsIdentChar(s[begin])) ++begin;
  size_t end = begin;
  while (end < s.size() && IsIdentChar(s[end])) ++end;
  return s.substr(begin, end - begin);
}

bool EndsWithIdent(const std::string& s, const std::string& ident) {
  if (s.size() < ident.size()) return false;
  if (s.compare(s.size() - ident.size(), ident.size(), ident) != 0)
    return false;
  size_t before = s.size() - ident.size();
  return before == 0 || !IsIdentChar(s[before - 1]);
}

const char* const kControlKeywords[] = {"if",     "else", "for",   "while",
                                        "do",     "try",  "catch", "switch"};

bool StartsWithToken(const std::string& s, const std::string& tok) {
  if (s.compare(0, tok.size(), tok) != 0) return false;
  return s.size() == tok.size() || !IsIdentChar(s[tok.size()]);
}

/// Strips one leading `template <...>` (angle-matched) from a header.
std::string StripTemplatePrefix(std::string s) {
  s = Trim(s);
  while (StartsWithToken(s, "template")) {
    size_t lt = s.find('<');
    if (lt == std::string::npos) break;
    int depth = 0;
    size_t i = lt;
    for (; i < s.size(); ++i) {
      if (s[i] == '<') ++depth;
      if (s[i] == '>') {
        --depth;
        if (depth == 0) break;
      }
    }
    if (i >= s.size()) break;
    s = Trim(s.substr(i + 1));
  }
  return s;
}

int ParenBalance(const std::string& s) {
  int bal = 0;
  bool in_str = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '(') ++bal;
    if (c == ')') --bal;
  }
  return bal;
}

bool IsKeyword(const std::string& id) {
  static const std::set<std::string> kw = {
      "if",       "else",    "for",      "while",     "do",       "switch",
      "case",     "return",  "sizeof",   "alignof",   "new",      "delete",
      "static_cast",         "dynamic_cast",          "const_cast",
      "reinterpret_cast",    "decltype", "noexcept",  "throw",    "catch",
      "try",      "typename","template", "class",     "struct",   "union",
      "enum",     "namespace",           "using",     "typedef",  "operator",
      "static_assert",       "defined",  "alignas",   "co_await", "co_return",
      "co_yield", "assert"};
  return kw.count(id) > 0;
}

struct ScannerState;

enum class ScopeKind {
  kNamespace,
  kClass,
  kFunction,
  kBlock,
  kLoop,
  kLambda,
  kExpr,
};

struct Frame {
  ScopeKind kind = ScopeKind::kBlock;
  std::string name;  ///< Namespace / class simple name; function qual name.
  size_t open_line = 0;
  size_t func_idx = kNoIndex;        ///< kFunction only.
  std::vector<std::string> locks;    ///< Lock ids acquired in this scope.
  Loop loop;                         ///< kLoop only.
  size_t loop_stmts = 0;
  size_t loop_waits = 0;
  std::string saved_stmt;            ///< kExpr / kLambda: suspended stmt.
  size_t saved_stmt_line = 0;
  int saved_paren = 0;
};

struct ScannerState {
  Model* model = nullptr;
  std::string file;  ///< Repo-relative.
  bool collect_only = false;

  std::vector<Frame> stack;
  std::string stmt;
  size_t stmt_line = 0;  ///< Line where the current stmt started.
  int paren = 0;

  /// Function-local mutexes and guard-variable -> lock-id bindings of the
  /// innermost function (reset on function entry; lambdas share them,
  /// which is the useful approximation).
  std::map<std::string, std::string> local_mutexes;
  std::map<std::string, std::string> guard_vars;
};

/// Innermost function frame index in the stack, or kNoIndex.
size_t InnerFunction(const ScannerState& st) {
  for (size_t i = st.stack.size(); i-- > 0;) {
    if (st.stack[i].kind == ScopeKind::kFunction) return i;
  }
  return kNoIndex;
}

std::string EnclosingClass(const ScannerState& st) {
  std::string name;
  for (const Frame& f : st.stack) {
    if (f.kind == ScopeKind::kClass) {
      if (!name.empty()) name += "::";
      name += f.name;
    }
  }
  return name;
}

std::vector<std::string> HeldLocks(const ScannerState& st) {
  std::vector<std::string> held;
  for (const Frame& f : st.stack)
    for (const std::string& l : f.locks) held.push_back(l);
  return held;
}

void ReleaseLock(ScannerState* st, const std::string& id) {
  for (size_t i = st->stack.size(); i-- > 0;) {
    auto& locks = st->stack[i].locks;
    auto it = std::find(locks.rbegin(), locks.rend(), id);
    if (it != locks.rend()) {
      locks.erase(std::next(it).base());
      return;
    }
  }
}

/// Resolves a lock expression (already stripped of '&') to a stable id.
/// See model.h for the naming scheme.
std::string ResolveLockExpr(const ScannerState& st, std::string expr) {
  expr = Trim(expr);
  while (!expr.empty() && (expr[0] == '&' || expr[0] == '*')) {
    expr = Trim(expr.substr(1));
  }
  if (expr.compare(0, 6, "this->") == 0) expr = expr.substr(6);
  const std::string cls = EnclosingClass(st);
  if (expr.find('(') != std::string::npos) {
    // Call form, e.g. ShardLock(src). Identify by callee.
    std::string callee = LastIdentifier(expr.substr(0, expr.find('(')));
    if (!cls.empty()) return cls + "::" + callee + "()";
    return st.file + "::" + callee + "()";
  }
  size_t sep = std::string::npos;
  for (size_t i = expr.size(); i-- > 0;) {
    if (expr[i] == '.' ||
        (expr[i] == '>' && i > 0 && expr[i - 1] == '-')) {
      sep = i;
      break;
    }
  }
  std::string field = LastIdentifier(expr);
  if (field.empty()) return st.file + "::" + RemoveWs(expr);
  if (sep == std::string::npos) {
    auto lm = st.local_mutexes.find(field);
    if (lm != st.local_mutexes.end()) return lm->second;
    auto gv = st.guard_vars.find(field);
    if (gv != st.guard_vars.end()) return gv->second;
  }
  std::vector<const MutexDecl*> candidates;
  for (const MutexDecl& d : st.model->mutexes)
    if (d.field == field) candidates.push_back(&d);
  if (sep == std::string::npos && !cls.empty()) {
    // Plain member reference: enclosing class chain wins outright.
    for (const MutexDecl* d : candidates) {
      if (d->owner == cls) return d->owner + "::" + d->field;
    }
    // An enclosing outer class (methods of Outer referencing a field that
    // Outer itself declares while we are inside Outer::Inner).
    for (const MutexDecl* d : candidates) {
      if (cls.compare(0, d->owner.size(), d->owner) == 0 &&
          (cls.size() == d->owner.size() || cls[d->owner.size()] == ':'))
        return d->owner + "::" + d->field;
    }
  }
  if (candidates.size() == 1)
    return candidates[0]->owner + "::" + candidates[0]->field;
  if (!cls.empty()) {
    // Compound expr (x->mu): a nested struct of the enclosing class.
    std::vector<const MutexDecl*> nested;
    std::string outer = FirstIdentifier(cls);
    for (const MutexDecl* d : candidates) {
      if (d->owner.compare(0, outer.size(), outer) == 0) nested.push_back(d);
    }
    if (nested.size() == 1) return nested[0]->owner + "::" + nested[0]->field;
  }
  return st.file + "::" + RemoveWs(expr);
}

void MarkLoopPoll(ScannerState* st) {
  for (Frame& f : st->stack)
    if (f.kind == ScopeKind::kLoop) f.loop.has_poll = true;
}

void AddLoopCall(ScannerState* st, const std::string& simple) {
  for (Frame& f : st->stack)
    if (f.kind == ScopeKind::kLoop) f.loop.calls.insert(simple);
}

/// Registers one lock acquisition in the innermost scope: ordering edges
/// against everything currently held, then pushes onto the held set.
void Acquire(ScannerState* st, const std::string& id, size_t line) {
  size_t fi = InnerFunction(*st);
  if (fi == kNoIndex) return;
  Function& fn = st->model->functions[st->stack[fi].func_idx];
  fn.acquired_locks.insert(id);
  for (const std::string& held : HeldLocks(*st)) {
    fn.order_edges.push_back(OrderEdge{held, id, st->file, line});
  }
  st->stack.back().locks.push_back(id);
}

struct GuardSpec {
  const char* token;
  bool shared;
  bool multi_arg;  ///< std::scoped_lock takes several mutexes.
};

constexpr GuardSpec kGuards[] = {
    {"MutexLock", false, false},  {"lock_guard", false, false},
    {"unique_lock", false, false}, {"shared_lock", true, false},
    {"scoped_lock", false, true},
};

const char* const kBlockingTokens[] = {
    "Await", "join",  "Join",       "Submit",      "ParallelFor",
    "ParallelForRange", "Receive",  "sleep_for",   "sleep_until",
};

const char* const kPollTokens[] = {"CheckRunnable", "HasExpired", "Cancelled",
                                   "IsCancelled"};

/// True when `pos` (start of a token) is preceded by `.` or `->`.
bool IsMemberCall(const std::string& s, size_t pos) {
  size_t i = pos;
  while (i > 0 && (s[i - 1] == ' ' || s[i - 1] == '\t')) --i;
  if (i == 0) return false;
  if (s[i - 1] == '.') return true;
  if (s[i - 1] == '>' && i >= 2 && s[i - 2] == '-') return true;
  return false;
}

/// Receiver expression preceding a member call at `pos` ("x->y" for
/// "x->y.Wait"), best effort: scans back over idents, ., ->, [], ().
std::string ReceiverBefore(const std::string& s, size_t pos) {
  size_t i = pos;
  while (i > 0 && (s[i - 1] == ' ' || s[i - 1] == '\t')) --i;
  // Skip the separator itself.
  if (i > 0 && s[i - 1] == '.') {
    --i;
  } else if (i > 1 && s[i - 1] == '>' && s[i - 2] == '-') {
    i -= 2;
  } else {
    return "";
  }
  size_t end = i;
  int depth = 0;
  while (i > 0) {
    char c = s[i - 1];
    if (c == ')' || c == ']') {
      ++depth;
      --i;
      continue;
    }
    if (c == '(' || c == '[') {
      if (depth == 0) break;
      --depth;
      --i;
      continue;
    }
    if (depth > 0) {
      --i;
      continue;
    }
    if (IsIdentChar(c) || c == '.' || c == '_' ) {
      --i;
      continue;
    }
    if (c == '>' && i > 1 && s[i - 2] == '-') {
      i -= 2;
      continue;
    }
    break;
  }
  return Trim(s.substr(i, end - i));
}

// ---------------------------------------------------------------------------
// Registry parsing (special-cased files)
// ---------------------------------------------------------------------------

void ParseFaultRegistry(Model* m, const std::string& rel,
                        const std::vector<std::string>& code) {
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].find("kAllFaultSites") == std::string::npos) continue;
    m->has_fault_registry = true;
    m->fault_registry_file = rel;
    m->fault_registry_line = i + 1;
    for (size_t j = i; j < code.size(); ++j) {
      for (const std::string& lit : StringLiterals(code[j]))
        m->fault_registry.push_back(lit);
      if (code[j].find("};") != std::string::npos) return;
    }
    return;
  }
}

void ParseMetricRegistry(Model* m, const std::string& rel,
                         const std::vector<std::string>& code) {
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& l = code[i];
    size_t k = FindToken(l, "constexpr", 0);
    if (k == std::string::npos) continue;
    size_t ch = l.find("char", k);
    if (ch == std::string::npos) continue;
    size_t name_b = l.find('k', ch + 4);
    if (name_b == std::string::npos) continue;
    size_t name_e = name_b;
    while (name_e < l.size() && IsIdentChar(l[name_e])) ++name_e;
    std::string name = l.substr(name_b, name_e - name_b);
    if (name.size() < 2) continue;
    // The value literal may sit on a continuation line.
    std::vector<std::string> lits = StringLiterals(l);
    for (size_t j = i + 1; lits.empty() && j < code.size() && j <= i + 2; ++j)
      lits = StringLiterals(code[j]);
    if (lits.empty()) continue;
    m->has_metric_registry = true;
    m->metric_registry_file = rel;
    m->metric_registry[name] = lits[0];
    m->metric_registry_lines[name] = i + 1;
  }
}

void ParseSpanTable(Model* m, const std::string& rel,
                    const std::vector<std::string>& code) {
  m->span_table_file = rel;
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& l = code[i];
    size_t b = l.find('{');
    if (b == std::string::npos) continue;
    std::vector<std::string> lits = StringLiterals(l);
    if (lits.size() < 2) continue;
    SpanSpecEntry e;
    e.name = lits[0];
    e.category = lits[1];
    e.prefix = l.find("true") != std::string::npos;
    e.line = i + 1;
    m->has_span_table = true;
    m->span_table.push_back(e);
  }
}

// ---------------------------------------------------------------------------
// Usage harvesting
// ---------------------------------------------------------------------------

void HarvestUsages(ScannerState* st, const std::string& stmt, size_t line) {
  Model* m = st->model;
  // Fault sites: FLEX_FAULT_POINT("x") / FLEX_FAULT_INJECT("x").
  for (const char* macro : {"FLEX_FAULT_POINT", "FLEX_FAULT_INJECT"}) {
    size_t from = 0;
    std::string args;
    size_t pos = 0;
    while (CallArgs(stmt, macro, from, &args, &pos)) {
      std::vector<std::string> lits = StringLiterals(args);
      std::string first = SplitArgs(args).empty() ? "" : SplitArgs(args)[0];
      if (!first.empty() && first[0] == '"' && !lits.empty()) {
        m->fault_uses.push_back(FaultUse{lits[0], st->file, line});
      }
      from = pos + std::string(macro).size();
    }
  }
  // Metric constants: metrics::kFoo.
  size_t mp = 0;
  while ((mp = stmt.find("metrics::k", mp)) != std::string::npos) {
    size_t b = mp + std::string("metrics::").size();
    size_t e = b;
    while (e < stmt.size() && IsIdentChar(stmt[e])) ++e;
    m->metric_uses.push_back(MetricUse{stmt.substr(b, e - b), st->file, line});
    mp = e;
  }
  // Raw string literals passed to metric macros.
  for (const char* macro :
       {"FLEX_COUNTER_ADD", "FLEX_COUNTER_INC", "FLEX_GAUGE_ADD",
        "FLEX_GAUGE_SET", "FLEX_HISTOGRAM_OBSERVE_US"}) {
    size_t from = 0;
    std::string args;
    size_t pos = 0;
    while (CallArgs(stmt, macro, from, &args, &pos)) {
      std::vector<std::string> parts = SplitArgs(args);
      if (!parts.empty() && !parts[0].empty() && parts[0][0] == '"') {
        std::vector<std::string> lits = StringLiterals(parts[0]);
        m->raw_metric_literals.push_back(
            MetricUse{lits.empty() ? "" : lits[0], st->file, line});
      }
      from = pos + std::string(macro).size();
    }
  }
  // Trace spans. Name is arg 0 of BeginSpan, arg 1 of a ScopedSpan ctor;
  // category follows the name.
  auto harvest_span = [&](const std::string& name_arg,
                          const std::string& cat_arg) {
    std::string na = Trim(name_arg);
    if (na.empty() || na[0] != '"') return;  // Dynamic name: not checkable.
    std::vector<std::string> lits = StringLiterals(na);
    if (lits.empty()) return;
    SpanUse u;
    u.name = lits[0];
    u.is_prefix = na.find('+') != std::string::npos;
    std::string ca = Trim(cat_arg);
    if (!ca.empty() && ca[0] == '"') {
      std::vector<std::string> cl = StringLiterals(ca);
      if (!cl.empty()) u.category = cl[0];
    }
    u.file = st->file;
    u.line = line;
    m->span_uses.push_back(u);
  };
  {
    size_t from = 0;
    std::string args;
    size_t pos = 0;
    while (CallArgs(stmt, "BeginSpan", from, &args, &pos)) {
      std::vector<std::string> parts = SplitArgs(args);
      if (parts.size() >= 2) harvest_span(parts[0], parts[1]);
      from = pos + std::string("BeginSpan").size();
    }
  }
  {
    // trace::ScopedSpan <var>(<trace>, <name>, <category>[, parent]).
    size_t sp = 0;
    while ((sp = FindToken(stmt, "ScopedSpan", sp)) != std::string::npos) {
      size_t after = sp + std::string("ScopedSpan").size();
      // Require an identifier between the type and '(' — a declaration.
      size_t ws = after;
      while (ws < stmt.size() && std::isspace((unsigned char)stmt[ws])) ++ws;
      size_t id_end = ws;
      while (id_end < stmt.size() && IsIdentChar(stmt[id_end])) ++id_end;
      if (id_end == ws) {
        sp = after;
        continue;
      }
      std::string var = stmt.substr(ws, id_end - ws);
      std::string args;
      size_t pos = 0;
      if (CallArgs(stmt, var, id_end - var.size(), &args, &pos)) {
        std::vector<std::string> parts = SplitArgs(args);
        if (parts.size() >= 3) harvest_span(parts[1], parts[2]);
      }
      sp = after;
    }
  }
}

// ---------------------------------------------------------------------------
// Statement analysis inside functions
// ---------------------------------------------------------------------------

void AnalyzeClassMember(ScannerState* st, const std::string& stmt,
                        size_t line) {
  Model* m = st->model;
  std::string s = CollapseWs(Trim(stmt));
  if (s.empty()) return;
  // Mutex field declarations — harvested only in the collect pass so the
  // analysis pass does not duplicate them.
  if (st->collect_only) {
    std::string t = s;
    if (StartsWithToken(t, "mutable")) t = Trim(t.substr(7));
    static const char* const kMutexTypes[] = {
        "Mutex", "std::mutex", "std::shared_mutex", "std::recursive_mutex"};
    for (const char* ty : kMutexTypes) {
      if (t.compare(0, std::string(ty).size(), ty) == 0) {
        std::string rest = t.substr(std::string(ty).size());
        // Reject "Mutex" as a prefix of a longer token (e.g. MutexLock).
        if (!rest.empty() && IsIdentChar(rest[0])) continue;
        rest = Trim(rest);
        while (!rest.empty() && rest[0] == '*') rest = Trim(rest.substr(1));
        std::string field = FirstIdentifier(rest);
        if (field.empty()) continue;
        // A method returning Mutex* has '(' right after the name.
        size_t fp = rest.find(field);
        size_t after = fp + field.size();
        if (after < rest.size() && rest[after] == '(') continue;
        MutexDecl d;
        d.owner = EnclosingClass(*st);
        d.field = field;
        d.file = st->file;
        d.line = line;
        if (!d.owner.empty()) m->mutexes.push_back(d);
      }
    }
    return;
  }
  // ACQUIRE/EXCLUDES annotations on member declarations: record the
  // promise "calling this function acquires these locks".
  for (const char* ann : {"ACQUIRE", "ACQUIRE_SHARED", "EXCLUDES"}) {
    std::string args;
    size_t pos = 0;
    if (!CallArgs(s, ann, 0, &args, &pos)) continue;
    size_t first_paren = s.find('(');
    if (first_paren == std::string::npos || first_paren >= pos) continue;
    std::string method = LastIdentifier(s.substr(0, first_paren));
    if (method.empty()) continue;
    // Parameter names of the declaration: annotation args naming a
    // parameter (e.g. MutexLock(Mutex* mu) ACQUIRE(mu)) are dynamic.
    std::string params;
    CallArgs(s, method, 0, &params, nullptr);
    for (const std::string& a : SplitArgs(args)) {
      std::string ident = Trim(a);
      if (ident.empty()) continue;
      if (!params.empty() && ContainsToken(params, FirstIdentifier(ident)))
        continue;
      st->model->annotation_locks[method].insert(ResolveLockExpr(*st, ident));
    }
  }
}

void AnalyzeStatement(ScannerState* st, const std::string& raw_stmt,
                      size_t line, bool is_header) {
  std::string s = CollapseWs(Trim(raw_stmt));
  if (s.empty()) return;
  size_t fi = InnerFunction(*st);
  if (st->collect_only) {
    if (fi == kNoIndex && !st->stack.empty() &&
        st->stack.back().kind == ScopeKind::kClass)
      AnalyzeClassMember(st, s, line);
    return;
  }
  HarvestUsages(st, s, line);

  if (fi == kNoIndex) {
    if (!st->stack.empty() && st->stack.back().kind == ScopeKind::kClass)
      AnalyzeClassMember(st, s, line);
    return;
  }
  Function& fn = st->model->functions[st->stack[fi].func_idx];

  // Poll tokens.
  for (const char* p : kPollTokens) {
    if (ContainsToken(s, p)) {
      fn.has_poll = true;
      MarkLoopPoll(st);
      break;
    }
  }

  bool pure_wait = false;

  // Local mutex declarations: "Mutex err_mu;".
  if ((StartsWithToken(s, "Mutex") || StartsWithToken(s, "flex::Mutex")) &&
      s.find('(') == std::string::npos) {
    std::string rest = Trim(s.substr(s.find("Mutex") + 5));
    std::string name = FirstIdentifier(rest);
    if (!name.empty()) {
      st->local_mutexes[name] =
          "local:" + st->file + ":" + fn.simple_name + ":" + name;
    }
  }

  // Lock guard declarations.
  for (const GuardSpec& g : kGuards) {
    size_t pos = FindToken(s, g.token, 0);
    if (pos == std::string::npos) continue;
    size_t i = pos + std::string(g.token).size();
    // Optional template argument list.
    while (i < s.size() && std::isspace((unsigned char)s[i])) ++i;
    if (i < s.size() && s[i] == '<') {
      int depth = 0;
      for (; i < s.size(); ++i) {
        if (s[i] == '<') ++depth;
        if (s[i] == '>') {
          --depth;
          if (depth == 0) {
            ++i;
            break;
          }
        }
      }
    }
    while (i < s.size() && std::isspace((unsigned char)s[i])) ++i;
    size_t id_b = i;
    while (i < s.size() && IsIdentChar(s[i])) ++i;
    if (i == id_b) continue;  // Not a declaration (e.g. a cast or type use).
    std::string var = s.substr(id_b, i - id_b);
    std::string args;
    if (!CallArgs(s, var, id_b, &args, nullptr)) continue;
    std::vector<std::string> parts = SplitArgs(args);
    if (parts.empty()) continue;
    bool adopted = false;
    for (const std::string& p : parts)
      if (p.find("adopt_lock") != std::string::npos ||
          p.find("defer_lock") != std::string::npos)
        adopted = true;
    if (adopted) continue;
    size_t nargs = g.multi_arg ? parts.size() : 1;
    for (size_t a = 0; a < nargs; ++a) {
      std::string id = ResolveLockExpr(*st, parts[a]);
      Acquire(st, id, line);
      st->guard_vars[var] = id;
    }
  }

  // Manual Lock()/Unlock() (and std lock()/unlock()/lock_shared()).
  for (const char* tok : {"Lock", "lock", "lock_shared"}) {
    size_t pos = 0;
    while ((pos = FindToken(s, tok, pos)) != std::string::npos) {
      size_t after = pos + std::string(tok).size();
      if (after < s.size() && s[after] == '(' && IsMemberCall(s, pos)) {
        std::string recv = ReceiverBefore(s, pos);
        // A guard var's .lock() re-acquires the bound mutex.
        if (!recv.empty()) Acquire(st, ResolveLockExpr(*st, recv), line);
      }
      pos = after;
    }
  }
  for (const char* tok : {"Unlock", "unlock", "unlock_shared"}) {
    size_t pos = 0;
    while ((pos = FindToken(s, tok, pos)) != std::string::npos) {
      size_t after = pos + std::string(tok).size();
      if (after < s.size() && s[after] == '(' && IsMemberCall(s, pos)) {
        std::string recv = ReceiverBefore(s, pos);
        if (!recv.empty()) ReleaseLock(st, ResolveLockExpr(*st, recv));
      }
      pos = after;
    }
  }

  // Condition-variable waits.
  auto handle_wait = [&](const char* tok) {
    size_t pos = 0;
    while ((pos = FindToken(s, tok, pos)) != std::string::npos) {
      size_t after = pos + std::string(tok).size();
      if (after >= s.size() || s[after] != '(' || !IsMemberCall(s, pos)) {
        pos = after;
        continue;
      }
      std::string args;
      if (!CallArgs(s, tok, pos, &args, nullptr)) {
        pos = after;
        continue;
      }
      std::vector<std::string> parts = SplitArgs(args);
      std::vector<std::string> held = HeldLocks(*st);
      if (parts.empty()) {
        // Join-style Wait(): blocking call, no own guard.
        if (!held.empty()) {
          // Recorded below through the blocking-token scan ("Wait" is not
          // in kBlockingTokens, so record here).
          BlockingEvent ev;
          ev.kind = BlockingEvent::Kind::kBlockingCall;
          ev.what = tok;
          ev.held = held;
          ev.file = st->file;
          ev.line = line;
          fn.blocking.push_back(ev);
        }
      } else {
        std::string target = ResolveLockExpr(*st, parts[0]);
        BlockingEvent ev;
        ev.kind = BlockingEvent::Kind::kCondWait;
        ev.what = tok;
        ev.target = target;
        ev.held = held;
        ev.file = st->file;
        ev.line = line;
        if (!held.empty()) fn.blocking.push_back(ev);
        pure_wait = true;
      }
      pos = after;
    }
  };
  handle_wait("Wait");
  handle_wait("WaitFor");
  handle_wait("wait");
  handle_wait("wait_for");

  // Other blocking calls while holding a lock.
  {
    std::vector<std::string> held = HeldLocks(*st);
    if (!held.empty()) {
      for (const char* tok : kBlockingTokens) {
        size_t pos = FindToken(s, tok, 0);
        if (pos == std::string::npos) continue;
        size_t after = pos + std::string(tok).size();
        if (after >= s.size() || s[after] != '(') continue;
        BlockingEvent ev;
        ev.kind = BlockingEvent::Kind::kBlockingCall;
        ev.what = tok;
        ev.held = held;
        ev.file = st->file;
        ev.line = line;
        fn.blocking.push_back(ev);
      }
    }
  }

  // Call harvest. Tokens the lock/wait machinery already interpreted are
  // excluded so call-graph propagation does not double-count them.
  {
    static const std::set<std::string> handled = {
        "Lock", "Unlock", "lock", "unlock", "lock_shared", "unlock_shared",
        "Wait", "WaitFor", "wait", "wait_for"};
    std::vector<std::string> held = HeldLocks(*st);
    for (size_t i = 0; i + 1 < s.size(); ++i) {
      if (!IsIdentChar(s[i])) continue;
      size_t b = i;
      while (i < s.size() && IsIdentChar(s[i])) ++i;
      std::string id = s.substr(b, i - b);
      if (i < s.size() && s[i] == '(' && !IsKeyword(id) &&
          handled.count(id) == 0 && !std::isdigit((unsigned char)id[0])) {
        fn.calls.insert(id);
        AddLoopCall(st, id);
        if (!held.empty()) {
          fn.calls_under_lock.push_back(
              CallUnderLock{held, id, st->file, line});
        }
      }
    }
  }

  // Loop statement bookkeeping.
  if (!is_header) {
    for (Frame& f : st->stack) {
      if (f.kind != ScopeKind::kLoop) continue;
      ++f.loop_stmts;
      if (pure_wait) ++f.loop_waits;
    }
  }
}

// ---------------------------------------------------------------------------
// Brace classification
// ---------------------------------------------------------------------------

struct BraceDecision {
  ScopeKind kind = ScopeKind::kBlock;
  std::string name;
};

BraceDecision ClassifyBrace(ScannerState* st, const std::string& header,
                            int paren_at_brace) {
  BraceDecision d;
  std::string s = CollapseWs(Trim(header));
  if (!st->stack.empty() && st->stack.back().kind == ScopeKind::kExpr) {
    d.kind = ScopeKind::kExpr;
    return d;
  }
  if (paren_at_brace > 0) {
    // Inside an argument list: a lambda body or a braced initializer.
    if (!s.empty() && (s.back() == ']' || s.back() == ')'))
      d.kind = ScopeKind::kLambda;
    else if (s.find("](") != std::string::npos ||
             s.find("] (") != std::string::npos)
      d.kind = ScopeKind::kLambda;
    else
      d.kind = ScopeKind::kExpr;
    return d;
  }
  if (s.empty()) {
    d.kind = InnerFunction(*st) != kNoIndex ? ScopeKind::kBlock
                                            : ScopeKind::kExpr;
    return d;
  }
  char last = s.back();
  if (last == '=' || last == ',' || last == '(' || last == '[' ||
      EndsWithIdent(s, "return")) {
    d.kind = ScopeKind::kExpr;
    return d;
  }
  s = StripTemplatePrefix(s);
  if (StartsWithToken(s, "namespace") || StartsWithToken(s, "extern")) {
    d.kind = ScopeKind::kNamespace;
    std::string rest = Trim(s.substr(s.find(' ') == std::string::npos
                                         ? s.size()
                                         : s.find(' ')));
    d.name = FirstIdentifier(rest);
    return d;
  }
  if (StartsWithToken(s, "enum")) {
    d.kind = ScopeKind::kExpr;
    return d;
  }
  if (StartsWithToken(s, "class") || StartsWithToken(s, "struct") ||
      StartsWithToken(s, "union")) {
    d.kind = ScopeKind::kClass;
    // Name: first identifier after the keyword that is not an ALL_CAPS
    // macro (CAPABILITY("mutex")), not `final`/`alignas`.
    std::string rest = Trim(s.substr(s.find(' ') == std::string::npos
                                         ? s.size()
                                         : s.find(' ')));
    // Cut the base-clause.
    size_t colon = std::string::npos;
    int ang = 0;
    bool in_str2 = false;
    for (size_t i = 0; i + 1 <= rest.size(); ++i) {
      char c = rest[i];
      if (in_str2) {
        if (c == '"') in_str2 = false;
        continue;
      }
      if (c == '"') in_str2 = true;
      if (c == '<') ++ang;
      if (c == '>') --ang;
      if (c == ':' && ang == 0 && (i + 1 >= rest.size() || rest[i + 1] != ':') &&
          (i == 0 || rest[i - 1] != ':')) {
        colon = i;
        break;
      }
    }
    if (colon != std::string::npos) rest = Trim(rest.substr(0, colon));
    std::string name;
    size_t i = 0;
    while (i < rest.size()) {
      while (i < rest.size() && !IsIdentChar(rest[i])) {
        if (rest[i] == '(') {  // Skip a macro's argument list.
          int depth = 0;
          for (; i < rest.size(); ++i) {
            if (rest[i] == '(') ++depth;
            if (rest[i] == ')') {
              --depth;
              if (depth == 0) {
                ++i;
                break;
              }
            }
          }
        } else {
          ++i;
        }
      }
      size_t b = i;
      while (i < rest.size() && IsIdentChar(rest[i])) ++i;
      std::string tok = rest.substr(b, i - b);
      if (tok.empty()) break;
      if (tok == "final" || tok == "alignas") continue;
      bool all_caps = true;
      for (char c : tok)
        if (std::islower((unsigned char)c)) all_caps = false;
      // ALL_CAPS followed by '(' is an annotation macro.
      if (all_caps && i < rest.size() && rest[i] == '(') continue;
      // A plain ALL_CAPS token could still be a macro (SCOPED_CAPABILITY);
      // accept it only if nothing follows.
      if (all_caps && tok.size() > 3 && i < rest.size()) {
        size_t j = i;
        while (j < rest.size() && std::isspace((unsigned char)rest[j])) ++j;
        if (j < rest.size() && IsIdentChar(rest[j])) continue;
      }
      name = tok;
      break;
    }
    d.name = name.empty() ? "<anon>" : name;
    return d;
  }
  for (const char* kw : kControlKeywords) {
    if (StartsWithToken(s, kw)) {
      d.kind = (std::string(kw) == "for" || std::string(kw) == "while" ||
                std::string(kw) == "do")
                   ? ScopeKind::kLoop
                   : ScopeKind::kBlock;
      d.name = kw;
      return d;
    }
  }
  bool in_function = InnerFunction(*st) != kNoIndex;
  if (in_function) {
    if (!s.empty() && s.back() == ']') {
      d.kind = ScopeKind::kLambda;
      return d;
    }
    if (ParenBalance(s) > 0 || s.find("= [") != std::string::npos ||
        s.find("=[") != std::string::npos) {
      d.kind = ScopeKind::kLambda;
      return d;
    }
    d.kind = ScopeKind::kBlock;
    return d;
  }
  // Namespace / class / global scope.
  size_t paren = s.find('(');
  if (paren == std::string::npos) {
    d.kind = ScopeKind::kExpr;  // Braced member initializer.
    return d;
  }
  // Function definition if the header ends plausibly (")", "const",
  // "noexcept", "override", a ")"-terminated annotation) or has a trailing
  // return type.
  bool func_like = s.back() == ')' || EndsWithIdent(s, "const") ||
                   EndsWithIdent(s, "noexcept") || EndsWithIdent(s, "override") ||
                   EndsWithIdent(s, "final") || EndsWithIdent(s, "try") ||
                   s.find(") ->") != std::string::npos ||
                   s.find(")->") != std::string::npos;
  // A constructor init-list brace-init ("Foo() : v_{") ends with an
  // identifier and contains ") :" — expression brace.
  if (!func_like) {
    d.kind = ScopeKind::kExpr;
    return d;
  }
  d.kind = ScopeKind::kFunction;
  std::string before = s.substr(0, paren);
  // `operator()` would leave before ending with "operator".
  std::string name = LastIdentifier(before);
  if (EndsWithIdent(Trim(before), "operator")) name = "operator()";
  // Qualified name: walk back over Name::Name chains.
  std::string qual = name;
  {
    size_t end = before.find_last_not_of(" \t");
    if (end != std::string::npos) {
      std::string t = Trim(before);
      size_t e = t.size();
      // Scan back over [ident|::|~] characters.
      size_t b2 = e;
      while (b2 > 0 && (IsIdentChar(t[b2 - 1]) || t[b2 - 1] == ':' ||
                        t[b2 - 1] == '~'))
        --b2;
      qual = t.substr(b2);
      if (!qual.empty() && qual[0] == ':') qual = Trim(qual.substr(qual.find_first_not_of(':')));
    }
  }
  std::string cls = EnclosingClass(*st);
  if (!cls.empty() && qual.find("::") == std::string::npos)
    qual = cls + "::" + qual;
  d.name = qual.empty() ? name : qual;
  return d;
}

// ---------------------------------------------------------------------------
// The per-file scan
// ---------------------------------------------------------------------------

void ScanFile(Model* m, const std::string& rel,
              const std::vector<std::string>& code, bool collect_only) {
  ScannerState st;
  st.model = m;
  st.file = rel;
  st.collect_only = collect_only;

  bool in_preproc = false;
  for (size_t ln = 0; ln < code.size(); ++ln) {
    const std::string& line = code[ln];
    std::string trimmed = Trim(line);
    bool cont = in_preproc;
    in_preproc = false;
    if (cont || (!trimmed.empty() && trimmed[0] == '#')) {
      if (!trimmed.empty() && trimmed.back() == '\\') in_preproc = true;
      continue;
    }
    for (size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      if (c == '"' || c == '\'') {
        char q = c;
        if (st.stmt.empty()) st.stmt_line = ln + 1;
        st.stmt += c;
        ++i;
        while (i < line.size()) {
          st.stmt += line[i];
          if (line[i] == '\\' && i + 1 < line.size()) {
            st.stmt += line[i + 1];
            i += 2;
            continue;
          }
          if (line[i] == q) break;
          ++i;
        }
        continue;
      }
      if (c == '(') {
        ++st.paren;
      } else if (c == ')') {
        if (st.paren > 0) --st.paren;
      }
      if (c == '{') {
        BraceDecision d = ClassifyBrace(&st, st.stmt, st.paren);
        Frame f;
        f.kind = d.kind;
        f.name = d.name;
        f.open_line = ln + 1;
        if (d.kind == ScopeKind::kExpr || d.kind == ScopeKind::kLambda) {
          f.saved_stmt = st.stmt;
          f.saved_stmt_line = st.stmt_line;
          f.saved_paren = st.paren;
          st.paren = 0;
          st.stmt.clear();
          st.stack.push_back(std::move(f));
          continue;
        }
        std::string header = st.stmt;
        size_t header_line = st.stmt_line == 0 ? ln + 1 : st.stmt_line;
        st.stmt.clear();
        st.paren = 0;
        if (d.kind == ScopeKind::kFunction) {
          Function fn;
          fn.qual_name = d.name;
          size_t sep = d.name.rfind("::");
          fn.simple_name =
              sep == std::string::npos ? d.name : d.name.substr(sep + 2);
          fn.file = rel;
          fn.begin_line = header_line;
          f.func_idx = m->functions.size();
          m->functions.push_back(std::move(fn));
          st.local_mutexes.clear();
          st.guard_vars.clear();
        }
        if (d.kind == ScopeKind::kLoop) {
          f.loop.file = rel;
          f.loop.header_line = header_line;
          f.loop.body_begin = ln + 1;
          f.loop.header = CollapseWs(Trim(header));
          std::string nw = RemoveWs(header);
          // Unbounded shape: no a-priori iteration bound in the header.
          // A `for` loop that also tests .empty()/.load() still has its
          // counter bound, so only `while` conditions count for those.
          bool while_cond = nw.find("while(") != std::string::npos;
          f.loop.unbounded =
              nw.find("for(;;") != std::string::npos ||
              nw.find("while(true") != std::string::npos ||
              nw.find("while(1)") != std::string::npos ||
              (while_cond && (nw.find(".empty()") != std::string::npos ||
                              nw.find("->empty()") != std::string::npos ||
                              nw.find(".load(") != std::string::npos));
        }
        st.stack.push_back(std::move(f));
        if (d.kind == ScopeKind::kLoop || d.kind == ScopeKind::kBlock) {
          // Harvest calls/events from the header (condition) text.
          AnalyzeStatement(&st, header, header_line, /*is_header=*/true);
        }
        continue;
      }
      if (c == '}') {
        // Complete any dangling statement first (e.g. "int x = 1; }") —
        // but not the interior of an initializer-expression brace.
        if (!Trim(st.stmt).empty() && st.paren == 0 &&
            (st.stack.empty() ||
             st.stack.back().kind != ScopeKind::kExpr)) {
          AnalyzeStatement(&st, st.stmt, st.stmt_line, false);
        }
        st.stmt.clear();
        if (st.stack.empty()) continue;
        Frame f = std::move(st.stack.back());
        st.stack.pop_back();
        if (f.kind == ScopeKind::kExpr || f.kind == ScopeKind::kLambda) {
          st.stmt = f.saved_stmt + "{}";
          st.stmt_line = f.saved_stmt_line;
          st.paren = f.saved_paren;
          continue;
        }
        if (f.kind == ScopeKind::kFunction && f.func_idx != kNoIndex) {
          m->functions[f.func_idx].end_line = ln + 1;
        }
        if (f.kind == ScopeKind::kLoop && !collect_only) {
          f.loop.body_end = ln + 1;
          f.loop.wait_only = f.loop_stmts > 0 && f.loop_stmts == f.loop_waits;
          f.loop.statements = f.loop_stmts;
          size_t fi = InnerFunction(st);
          if (fi != kNoIndex) {
            m->functions[st.stack[fi].func_idx].loops.push_back(
                std::move(f.loop));
          }
        }
        continue;
      }
      if (c == ';' && st.paren == 0) {
        if (st.stack.empty() || st.stack.back().kind != ScopeKind::kExpr) {
          AnalyzeStatement(&st, st.stmt, st.stmt_line, false);
        }
        st.stmt.clear();
        continue;
      }
      if (c == ':' && st.paren == 0) {
        std::string t = Trim(st.stmt);
        bool dcolon = (i + 1 < line.size() && line[i + 1] == ':') ||
                      (!st.stmt.empty() && st.stmt.back() == ':');
        if (!dcolon && (t == "public" || t == "private" || t == "protected" ||
                        t == "default" || StartsWithToken(t, "case"))) {
          st.stmt.clear();
          continue;
        }
      }
      if (st.stmt.empty()) {
        if (std::isspace((unsigned char)c)) continue;  // No leading ws.
        st.stmt_line = ln + 1;
      }
      st.stmt += c;
    }
    if (!st.stmt.empty()) st.stmt += ' ';
  }
}

std::vector<fs::path> CollectFiles(const fs::path& dir) {
  std::vector<fs::path> files;
  if (!fs::exists(dir)) return files;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    std::string ext = e.path().extension().string();
    if (ext == ".h" || ext == ".cc") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

void HarvestAllowMarkers(Model* m, const std::string& rel,
                         const std::vector<std::string>& raw) {
  for (size_t i = 0; i < raw.size(); ++i) {
    size_t pos = raw[i].find("flexlint: allow(");
    if (pos == std::string::npos) continue;
    size_t b = pos + std::string("flexlint: allow(").size();
    size_t e = raw[i].find(')', b);
    if (e == std::string::npos) continue;
    AllowMarker mark;
    mark.rule = raw[i].substr(b, e - b);
    mark.file = rel;
    mark.line = i + 1;
    // Justified when non-trivial text follows the marker on the same line,
    // or the preceding line is a comment that is not itself a marker.
    std::string after = Trim(raw[i].substr(e + 1));
    if (!after.empty() && after[0] == ':') after = Trim(after.substr(1));
    if (after.size() >= 8) mark.justified = true;
    if (!mark.justified && i > 0) {
      std::string prev = Trim(raw[i - 1]);
      if (prev.compare(0, 2, "//") == 0 &&
          prev.find("flexlint:") == std::string::npos &&
          Trim(prev.substr(2)).size() >= 8)
        mark.justified = true;
    }
    m->allow_markers.push_back(mark);
  }
}

}  // namespace

bool Model::IsWaived(const std::string& file, size_t line,
                     const std::string& rule) const {
  auto it = raw_lines.find(file);
  if (it == raw_lines.end()) return false;
  const std::vector<std::string>& raw = it->second;
  std::string needle = "flexlint: allow(" + rule + ")";
  for (size_t l : {line, line - 1}) {
    if (l == 0 || l > raw.size()) continue;
    if (raw[l - 1].find(needle) != std::string::npos) return true;
  }
  return false;
}

Model BuildModel(const std::string& root) {
  Model m;
  fs::path src = fs::path(root) / "src";
  std::vector<fs::path> files = CollectFiles(src);

  struct Loaded {
    std::string rel;
    std::vector<std::string> raw;
    std::vector<std::string> code;
  };
  std::vector<Loaded> loaded;
  for (const fs::path& p : files) {
    Loaded l;
    l.rel = fs::relative(p, fs::path(root)).generic_string();
    std::ifstream in(p);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      l.raw.push_back(line);
    }
    l.code = StripComments(l.raw);
    loaded.push_back(std::move(l));
  }

  for (const Loaded& l : loaded) {
    m.raw_lines[l.rel] = l.raw;
    HarvestAllowMarkers(&m, l.rel, l.raw);
    if (l.rel == "src/common/fault.h") ParseFaultRegistry(&m, l.rel, l.code);
    if (l.rel == "src/common/metric_names.h")
      ParseMetricRegistry(&m, l.rel, l.code);
    if (l.rel == "src/common/trace_spans.h") ParseSpanTable(&m, l.rel, l.code);
  }

  // Pass 1: mutex member declarations only (lock-id resolution needs the
  // full cross-file table before any acquisition is interpreted). A scratch
  // model keeps pass-1 function records from polluting the real one.
  {
    Model scratch;
    for (const Loaded& l : loaded) ScanFile(&scratch, l.rel, l.code, true);
    m.mutexes = std::move(scratch.mutexes);
  }
  // Pass 2: everything else.
  for (const Loaded& l : loaded) ScanFile(&m, l.rel, l.code, false);

  for (size_t i = 0; i < m.functions.size(); ++i) {
    m.by_simple_name[m.functions[i].simple_name].push_back(i);
  }
  return m;
}

}  // namespace flexcheck
