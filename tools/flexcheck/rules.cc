#include "flexcheck/rules.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace flexcheck {

namespace {

/// A bounded loop counts as "longer than a batch boundary" at this many
/// body lines — and is then only flagged when the enclosing function never
/// polls at all (a function that polls at its boundary keeps every bounded
/// loop within one polled activation).
constexpr size_t kLongLoopLines = 40;

/// Unbounded-shape loops (for(;;), while(true), while(!x.empty()),
/// while(x.load())) must poll *inside* the loop once the body is big
/// enough to be more than an idiomatic decode/spin loop.
constexpr size_t kUnboundedMinLines = 12;

/// Everything a call to function `simple` may end up acquiring: its own
/// direct acquisitions, its ACQUIRE/EXCLUDES promises, and (depth-limited)
/// what its unambiguous callees acquire. Only unambiguous simple names
/// propagate — an overloaded name would smear unrelated locks together.
class MayAcquire {
 public:
  explicit MayAcquire(const Model& m) : m_(m) {}

  const std::set<std::string>& Of(const std::string& simple, int depth = 3) {
    auto it = memo_.find(simple);
    if (it != memo_.end()) return it->second;
    std::set<std::string>& out = memo_[simple];  // Breaks recursion cycles.
    auto ann = m_.annotation_locks.find(simple);
    if (ann != m_.annotation_locks.end())
      out.insert(ann->second.begin(), ann->second.end());
    auto fns = m_.by_simple_name.find(simple);
    if (fns == m_.by_simple_name.end() || fns->second.size() != 1) return out;
    const Function& fn = m_.functions[fns->second[0]];
    out.insert(fn.acquired_locks.begin(), fn.acquired_locks.end());
    if (depth <= 0) return out;
    for (const std::string& callee : fn.calls) {
      if (callee == simple) continue;
      const std::set<std::string>& sub = Of(callee, depth - 1);
      out.insert(sub.begin(), sub.end());
    }
    return memo_[simple];
  }

 private:
  const Model& m_;
  std::map<std::string, std::set<std::string>> memo_;
};

struct Edge {
  std::string to;
  std::string file;
  size_t line = 0;
  std::string via;  ///< Empty for a direct nesting, else the callee name.
};

bool ByPos(const Violation& a, const Violation& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  return a.message < b.message;
}

std::string JoinHeld(const std::vector<std::string>& held) {
  std::string out;
  for (const std::string& h : held) {
    if (!out.empty()) out += ", ";
    out += h;
  }
  return out;
}

}  // namespace

std::vector<Violation> CheckLockOrder(const Model& m) {
  std::vector<Violation> out;
  MayAcquire may(m);
  std::map<std::string, std::vector<Edge>> graph;

  for (const Function& fn : m.functions) {
    for (const OrderEdge& e : fn.order_edges) {
      if (m.IsWaived(e.file, e.line, "lock-order")) continue;
      graph[e.held].push_back(Edge{e.acquired, e.file, e.line, ""});
    }
    for (const CallUnderLock& c : fn.calls_under_lock) {
      if (m.IsWaived(c.file, c.line, "lock-order")) continue;
      for (const std::string& acq : may.Of(c.callee)) {
        for (const std::string& held : c.held) {
          // A callee re-acquiring an already-held lock is usually a
          // REQUIRES-shaped helper the text model cannot see through;
          // self-edges from call propagation stay out of the graph
          // (direct double-acquisition is still caught above).
          if (acq == held) continue;
          graph[held].push_back(Edge{acq, c.file, c.line, c.callee});
        }
      }
    }
  }

  // Cycle detection: DFS with a path stack; every back edge yields a cycle.
  // Cycles are canonicalized (rotated to their smallest node) and reported
  // once each.
  std::set<std::string> reported;
  std::vector<std::string> path;
  std::set<std::string> on_path;
  std::set<std::string> done;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    if (done.count(node) != 0) return;
    on_path.insert(node);
    path.push_back(node);
    auto it = graph.find(node);
    if (it != graph.end()) {
      for (const Edge& e : it->second) {
        if (on_path.count(e.to) != 0) {
          // Reconstruct the cycle e.to -> ... -> node -> e.to.
          size_t start = 0;
          while (start < path.size() && path[start] != e.to) ++start;
          std::vector<std::string> cycle(path.begin() + start, path.end());
          size_t min_i = 0;
          for (size_t i = 1; i < cycle.size(); ++i)
            if (cycle[i] < cycle[min_i]) min_i = i;
          std::rotate(cycle.begin(), cycle.begin() + min_i, cycle.end());
          std::string key;
          for (const std::string& n : cycle) key += n + ";";
          if (reported.insert(key).second) {
            std::ostringstream msg;
            msg << "lock-order cycle: ";
            for (size_t i = 0; i < cycle.size(); ++i)
              msg << cycle[i] << " -> ";
            msg << cycle[0];
            if (!e.via.empty()) msg << " (last edge via call to " << e.via << ")";
            out.push_back(Violation{e.file, e.line, "lock-order", msg.str()});
          }
          continue;
        }
        dfs(e.to);
      }
    }
    path.pop_back();
    on_path.erase(node);
    done.insert(node);
  };
  for (const auto& [node, edges] : graph) {
    (void)edges;
    dfs(node);
  }
  return out;
}

std::vector<Violation> CheckBlockingUnderLock(const Model& m) {
  std::vector<Violation> out;
  for (const Function& fn : m.functions) {
    for (const BlockingEvent& ev : fn.blocking) {
      if (m.IsWaived(ev.file, ev.line, "blocking-under-lock")) continue;
      if (ev.kind == BlockingEvent::Kind::kCondWait) {
        std::vector<std::string> offending;
        for (const std::string& h : ev.held)
          if (h != ev.target) offending.push_back(h);
        if (offending.empty()) continue;
        // An unresolvable wait target (e.g. a guard object the model lost
        // track of) exempts the innermost held lock: that is almost
        // certainly the wait's own guard.
        if (ev.target.find("::") == std::string::npos &&
            ev.target.compare(0, 6, "local:") != 0 &&
            offending.size() == ev.held.size()) {
          offending.pop_back();
          if (offending.empty()) continue;
        }
        out.push_back(Violation{
            ev.file, ev.line, "blocking-under-lock",
            "CondVar wait on " + ev.target + " in " + fn.qual_name +
                " while also holding {" + JoinHeld(offending) + "}"});
      } else {
        out.push_back(Violation{
            ev.file, ev.line, "blocking-under-lock",
            "blocking call '" + ev.what + "' in " + fn.qual_name +
                " while holding {" + JoinHeld(ev.held) + "}"});
      }
    }
  }
  return out;
}

std::vector<Violation> CheckRunnableCoverage(const Model& m) {
  std::vector<Violation> out;
  MayAcquire unused(m);
  // Transitive "reaches a poll" through unambiguous callees, depth-capped.
  std::map<std::string, int> memo;  // -1 in progress, 0 no, 1 yes.
  std::function<bool(const std::string&, int)> reaches =
      [&](const std::string& simple, int depth) -> bool {
    auto it = memo.find(simple);
    if (it != memo.end()) return it->second == 1;
    memo[simple] = -1;
    bool yes = false;
    auto fns = m.by_simple_name.find(simple);
    if (fns != m.by_simple_name.end() && fns->second.size() == 1) {
      const Function& fn = m.functions[fns->second[0]];
      if (fn.has_poll) {
        yes = true;
      } else if (depth > 0) {
        for (const std::string& c : fn.calls) {
          if (memo.count(c) != 0 && memo[c] == -1) continue;
          if (reaches(c, depth - 1)) {
            yes = true;
            break;
          }
        }
      }
    }
    memo[simple] = yes ? 1 : 0;
    return yes;
  };

  // Scope: the superstep/operator machinery. src/grape/apps/ holds PIE app
  // kernels whose whole activation runs inside one already-polled
  // superstep (RunPieChecked polls every round), so they stay out.
  auto in_scope = [](const std::string& file) {
    if (file.rfind("src/grape/apps/", 0) == 0) return false;
    return file.rfind("src/runtime/", 0) == 0 ||
           file.rfind("src/query/", 0) == 0 ||
           file.rfind("src/grape/", 0) == 0;
  };

  for (const Function& fn : m.functions) {
    if (!in_scope(fn.file)) continue;
    for (const Loop& loop : fn.loops) {
      if (loop.wait_only) continue;
      if (m.IsWaived(loop.file, loop.header_line, "runnable-coverage"))
        continue;
      size_t body_lines =
          loop.body_end > loop.header_line ? loop.body_end - loop.header_line
                                           : 0;
      bool trigger = false;
      if (loop.unbounded) {
        trigger = body_lines >= kUnboundedMinLines;
      } else {
        trigger = body_lines >= kLongLoopLines && !fn.has_poll;
      }
      if (!trigger) continue;
      bool polled = loop.has_poll;
      if (!polled) {
        for (const std::string& c : loop.calls) {
          if (reaches(c, 2)) {
            polled = true;
            break;
          }
        }
      }
      if (polled) continue;
      std::ostringstream msg;
      msg << (loop.unbounded ? "unbounded" : "long") << " loop in "
          << fn.qual_name << " (" << loop.header;
      if (loop.header.size() > 60) {
        msg.str("");
        msg << (loop.unbounded ? "unbounded" : "long") << " loop in "
            << fn.qual_name << " (" << loop.header.substr(0, 57) << "...";
      }
      msg << ", " << body_lines
          << " body lines) never reaches a CheckRunnable/deadline poll";
      out.push_back(
          Violation{loop.file, loop.header_line, "runnable-coverage",
                    msg.str()});
    }
  }
  return out;
}

std::vector<Violation> CheckRegistryDrift(const Model& m) {
  std::vector<Violation> out;
  auto waived = [&](const std::string& f, size_t l) {
    return m.IsWaived(f, l, "registry-drift");
  };

  if (m.has_fault_registry) {
    std::set<std::string> registry(m.fault_registry.begin(),
                                   m.fault_registry.end());
    std::set<std::string> used;
    for (const FaultUse& u : m.fault_uses) {
      used.insert(u.site);
      if (registry.count(u.site) == 0 && !waived(u.file, u.line)) {
        out.push_back(Violation{
            u.file, u.line, "registry-drift",
            "fault site \"" + u.site + "\" is not in kAllFaultSites (" +
                m.fault_registry_file + ")"});
      }
    }
    for (const std::string& site : registry) {
      if (used.count(site) == 0 &&
          !waived(m.fault_registry_file, m.fault_registry_line)) {
        out.push_back(Violation{
            m.fault_registry_file, m.fault_registry_line, "registry-drift",
            "dead registry entry: fault site \"" + site +
                "\" has no FLEX_FAULT_POINT/FLEX_FAULT_INJECT use in src/"});
      }
    }
  }

  if (m.has_metric_registry) {
    std::set<std::string> used;
    for (const MetricUse& u : m.metric_uses) {
      used.insert(u.constant);
      if (m.metric_registry.count(u.constant) == 0 && !waived(u.file, u.line)) {
        out.push_back(Violation{
            u.file, u.line, "registry-drift",
            "metric constant metrics::" + u.constant + " is not declared in " +
                m.metric_registry_file});
      }
    }
    for (const auto& [name, value] : m.metric_registry) {
      (void)value;
      size_t line = 0;
      auto lit = m.metric_registry_lines.find(name);
      if (lit != m.metric_registry_lines.end()) line = lit->second;
      if (used.count(name) == 0 && !waived(m.metric_registry_file, line)) {
        out.push_back(Violation{
            m.metric_registry_file, line, "registry-drift",
            "dead registry entry: metric constant " + name +
                " is never used via metrics::" + name + " in src/"});
      }
    }
    for (const MetricUse& u : m.raw_metric_literals) {
      if (waived(u.file, u.line)) continue;
      out.push_back(Violation{
          u.file, u.line, "registry-drift",
          "metric macro called with string literal \"" + u.constant +
              "\"; use a metrics:: constant from " + m.metric_registry_file});
    }
  }

  if (m.has_span_table) {
    std::vector<bool> entry_used(m.span_table.size(), false);
    for (const SpanUse& u : m.span_uses) {
      bool matched = false;
      const SpanSpecEntry* match = nullptr;
      for (size_t i = 0; i < m.span_table.size(); ++i) {
        const SpanSpecEntry& e = m.span_table[i];
        bool hit = false;
        if (e.prefix) {
          hit = u.name.compare(0, e.name.size(), e.name) == 0 ||
                (u.is_prefix && e.name.compare(0, u.name.size(), u.name) == 0);
        } else {
          hit = !u.is_prefix && u.name == e.name;
        }
        if (hit) {
          matched = true;
          entry_used[i] = true;
          if (match == nullptr) match = &e;
        }
      }
      if (!matched && !waived(u.file, u.line)) {
        out.push_back(Violation{
            u.file, u.line, "registry-drift",
            "trace span \"" + u.name + (u.is_prefix ? "...\"" : "\"") +
                " is not in the span table (" + m.span_table_file + ")"});
      } else if (matched && match != nullptr && !u.category.empty() &&
                 u.category != match->category && !waived(u.file, u.line)) {
        out.push_back(Violation{
            u.file, u.line, "registry-drift",
            "trace span \"" + u.name + "\" uses category \"" + u.category +
                "\" but the span table says \"" + match->category + "\""});
      }
    }
    for (size_t i = 0; i < m.span_table.size(); ++i) {
      const SpanSpecEntry& e = m.span_table[i];
      if (!entry_used[i] && !waived(m.span_table_file, e.line)) {
        out.push_back(Violation{
            m.span_table_file, e.line, "registry-drift",
            "dead registry entry: span \"" + e.name +
                "\" has no ScopedSpan/BeginSpan use in src/"});
      }
    }
  }
  return out;
}

std::vector<Violation> CheckWaiverJustification(const Model& m) {
  std::vector<Violation> out;
  for (const AllowMarker& a : m.allow_markers) {
    if (a.justified) continue;
    out.push_back(Violation{
        a.file, a.line, "waiver-justification",
        "flexlint: allow(" + a.rule +
            ") without a justification comment on the same or preceding "
            "line"});
  }
  return out;
}

std::vector<Violation> RunAllRules(const Model& m) {
  std::vector<Violation> all;
  for (auto* rule : {CheckLockOrder, CheckBlockingUnderLock,
                     CheckRunnableCoverage, CheckRegistryDrift,
                     CheckWaiverJustification}) {
    std::vector<Violation> v = rule(m);
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end(), ByPos);
  all.erase(std::unique(all.begin(), all.end(),
                        [](const Violation& a, const Violation& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            all.end());
  return all;
}

std::vector<Violation> AnalyzeTree(const std::string& root) {
  Model m = BuildModel(root);
  return RunAllRules(m);
}

}  // namespace flexcheck
