// flexcheck: cross-file semantic analyzer for the stack's concurrency and
// propagation contracts. Where flexlint checks single lines, flexcheck
// builds a lightweight cross-TU model of src/ (functions, lock
// acquisitions, call sites, loops, registries) and enforces:
//
//   lock-order            no cycles in the global lock acquisition graph
//   blocking-under-lock   no waits/joins/sleeps while holding an unrelated
//                         mutex
//   runnable-coverage     unbounded/long loops in src/runtime|query|grape
//                         must reach a CheckRunnable/deadline poll
//   registry-drift        fault sites, metric names, and trace span names
//                         must match the registries in src/common/, with no
//                         dead entries
//   waiver-justification  every `// flexlint: allow(<rule>)` needs a
//                         justification comment
//
// Usage: flexcheck <repo-root>
//
// Run automatically as a ctest test and by `tools/check.sh static`.
// Exits non-zero when any violation is found. See DESIGN.md §"Static
// analysis" for the rules and the waiver policy.

#include <cstdio>
#include <string>
#include <vector>

#include "flexcheck/model.h"
#include "flexcheck/rules.h"

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : ".";
  flexcheck::Model model = flexcheck::BuildModel(root);
  if (model.functions.empty()) {
    std::fprintf(stderr, "flexcheck: no sources found under %s/src\n",
                 root.c_str());
    return 2;
  }
  std::vector<flexcheck::Violation> violations =
      flexcheck::RunAllRules(model);
  for (const flexcheck::Violation& v : violations) {
    std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
  if (!violations.empty()) {
    std::printf("flexcheck: %zu violation(s) across %zu function(s) scanned\n",
                violations.size(), model.functions.size());
    return 1;
  }
  std::printf(
      "flexcheck: OK (%zu functions, %zu mutexes, %zu span uses, "
      "%zu metric uses, %zu fault sites)\n",
      model.functions.size(), model.mutexes.size(), model.span_uses.size(),
      model.metric_uses.size(), model.fault_uses.size());
  return 0;
}
