// flexbuild — the deployment utility of §3: "a utility tool that enables
// users to choose specific components, build and generate their
// respective binaries or Docker images."
//
// This reproduction's flexbuild maps the paper's numbered LEGO bricks
// (Figure 3, ①–㉔) onto this repository's libraries, resolves the
// dependency closure, and emits a ready-to-build CMake project for the
// custom deployment.
//
//   flexbuild --list
//   flexbuild --components 1,5,14,16,20,21 --name anti_fraud --out /tmp/d
//   flexbuild --preset workload2          # the paper's §3 example
//   flexbuild --preset workload5
//
// Example from the paper: "engineers focusing on Workload 2 might select
// components ①⑤⑭⑯⑳㉑" (SDK, built-in algorithms, PIE, GRAPE, GRIN,
// Vineyard); "a data scientist addressing Workload 5 may opt for
// ②④⑧⑨⑩⑬⑳㉓" (API, Cypher, GraphIR, optimizer, codegen, Gaia, GRIN,
// GraphAr).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace {

struct Component {
  int id;
  const char* name;
  const char* layer;
  const char* library;          // CMake target in this repo ("" = header).
  std::vector<int> depends_on;  // Other component ids.
};

// Figure 3's bricks, numbered as in the paper.
const Component kComponents[] = {
    {1, "C++ SDK", "application", "", {}},
    {2, "Client API (RESTful/WebSocket analogue)", "application", "", {}},
    {3, "Gremlin front end", "application", "flex_lang", {8}},
    {4, "Cypher front end", "application", "flex_lang", {8}},
    {5, "Built-in analytics algorithms", "application", "flex_grape", {16}},
    {6, "Custom-algorithm interfaces (PIE/Pregel/FLASH SDKs)", "application",
     "flex_grape", {16}},
    {7, "Built-in GNN models (GraphSAGE/NCN)", "application", "flex_learn",
     {17}},
    {8, "GraphIR", "engine", "flex_ir", {20}},
    {9, "Query optimizer (RBO + GLogue CBO)", "engine", "flex_optimizer",
     {8}},
    {10, "Code generator: Gaia", "engine", "flex_query", {8, 9}},
    {11, "Code generator: HiActor", "engine", "flex_query", {8, 9}},
    {12, "HiActor engine (OLTP)", "engine", "flex_runtime", {8}},
    {13, "Gaia engine (OLAP)", "engine", "flex_runtime", {8}},
    {14, "PIE model", "engine", "flex_grape", {16}},
    {15, "FLASH model", "engine", "flex_grape", {16}},
    {16, "GRAPE analytical engine", "engine", "flex_grape", {20}},
    {17, "GraphLearn (sampling + pipeline)", "engine", "flex_learn", {20}},
    {18, "Training backend (mini tensor library)", "engine", "flex_learn",
     {17}},
    {19, "Training backend: TensorFlow", "engine", "", {17}},
    {20, "GRIN unified retrieval interface", "storage", "flex_grin", {}},
    {21, "Vineyard (immutable in-memory store)", "storage", "flex_storage",
     {20}},
    {22, "GART (dynamic MVCC store)", "storage", "flex_storage", {20}},
    {23, "GraphAr (archive format)", "storage", "flex_storage", {20}},
    {24, "LiveGraph-style baseline store", "storage", "flex_storage", {20}},
};

const Component* Find(int id) {
  for (const Component& c : kComponents) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

void PrintList() {
  std::printf("GraphScope Flex components (Figure 3):\n");
  const char* current_layer = "";
  for (const Component& c : kComponents) {
    if (std::strcmp(current_layer, c.layer) != 0) {
      current_layer = c.layer;
      std::printf("\n  [%s layer]\n", c.layer);
    }
    std::printf("   %2d  %-52s %s\n", c.id, c.name,
                c.library[0] ? c.library : "(header-only)");
  }
  std::printf("\npresets: workload2 = 1,5,14,16,20,21   "
              "workload5 = 2,4,8,9,10,13,20,23\n");
}

/// Transitive dependency closure of the selection.
std::set<int> Closure(const std::set<int>& selected) {
  std::set<int> closed = selected;
  bool grew = true;
  while (grew) {
    grew = false;
    for (int id : std::set<int>(closed)) {
      const Component* c = Find(id);
      if (c == nullptr) continue;
      for (int dep : c->depends_on) {
        grew |= closed.insert(dep).second;
      }
    }
  }
  return closed;
}

int Generate(const std::set<int>& selection, const std::string& name,
             const std::string& out_dir) {
  const std::set<int> closed = Closure(selection);
  std::printf("deployment '%s': %zu selected -> %zu after dependency "
              "closure\n\n",
              name.c_str(), selection.size(), closed.size());
  std::set<std::string> libraries;
  for (int id : closed) {
    const Component* c = Find(id);
    if (c == nullptr) {
      std::fprintf(stderr, "error: unknown component %d (see --list)\n", id);
      return 1;
    }
    const bool added = selection.count(id) != 0;
    std::printf("  %2d  %-52s %s\n", c->id, c->name,
                added ? "" : "(dependency)");
    if (c->library[0]) libraries.insert(c->library);
  }

  if (out_dir.empty()) return 0;
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create %s\n", out_dir.c_str());
    return 1;
  }
  std::ofstream cmake(out_dir + "/CMakeLists.txt", std::ios::trunc);
  cmake << "# Generated by flexbuild — deployment '" << name << "'.\n"
        << "# Add this directory with add_subdirectory() from the\n"
        << "# GraphScope Flex repository root, or point FLEX_ROOT at it.\n"
        << "add_executable(" << name << " main.cc)\n"
        << "target_link_libraries(" << name << " PRIVATE\n";
  for (const std::string& lib : libraries) cmake << "  " << lib << "\n";
  cmake << ")\n";

  std::ofstream main_cc(out_dir + "/main.cc", std::ios::trunc);
  main_cc << "// Deployment '" << name
          << "' — generated by flexbuild; wire your workload here.\n"
          << "#include <cstdio>\n\nint main() {\n"
          << "  std::printf(\"deployment '" << name
          << "' is alive\\n\");\n  return 0;\n}\n";
  std::printf("\nwrote %s/CMakeLists.txt and main.cc (links:", out_dir.c_str());
  for (const std::string& lib : libraries) std::printf(" %s", lib.c_str());
  std::printf(")\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::set<int> selection;
  std::string name = "flex_deployment";
  std::string out_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      PrintList();
      return 0;
    }
    if (arg == "--components" && i + 1 < argc) {
      for (const std::string& tok : flex::Split(argv[++i], ',')) {
        selection.insert(std::atoi(tok.c_str()));
      }
    } else if (arg == "--preset" && i + 1 < argc) {
      const std::string preset = argv[++i];
      if (preset == "workload2") {
        selection = {1, 5, 14, 16, 20, 21};
        if (name == "flex_deployment") name = "anti_fraud_analytics";
      } else if (preset == "workload5") {
        selection = {2, 4, 8, 9, 10, 13, 20, 23};
        if (name == "flex_deployment") name = "bi_analysis";
      } else {
        std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
        return 1;
      }
    } else if (arg == "--name" && i + 1 < argc) {
      name = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: flexbuild --list | [--preset workload2|workload5] "
                   "[--components 1,5,...] [--name N] [--out DIR]\n");
      return arg == "--help" ? 0 : 1;
    }
  }
  if (selection.empty()) {
    PrintList();
    return 0;
  }
  return Generate(selection, name, out_dir);
}
