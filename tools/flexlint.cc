// flexlint: the repo's custom invariant linter, run as a ctest test.
//
// Walks src/ and tests/ and enforces the concurrency/determinism contracts
// that keep the benchmark harness honest:
//
//   raw-thread       std::thread may only be constructed inside
//                    common/thread_pool.{h,cc} (the audited pool) — every
//                    other component must submit work to a ThreadPool, so
//                    thread lifetime and shutdown have one implementation.
//                    Scope: src/.
//   nondeterminism   std::rand / srand / std::random_device are banned in
//                    engine code; the datagen and bench layers promise
//                    seed-reproducible runs, so all randomness flows through
//                    flex::Rng (common/random.h). Scope: src/.
//   stdio            printf / fprintf / puts / std::cout / std::cerr are
//                    banned in engine code; use common/logging.h so output
//                    is levelled, serialized, and redirectable. The logging
//                    sink itself (common/logging.cc) is the one exemption.
//                    Scope: src/.
//   header-guard     Every header's include guard must be derived from its
//                    path: src/grape/pie.h -> FLEX_GRAPE_PIE_H_. Scope:
//                    src/ and tests/.
//   iostream-header  #include <iostream> is banned in headers (it injects
//                    the static ios_base initializer into every TU).
//                    Scope: src/ and tests/.
//
// A violating line can be waived with a trailing marker naming the rule,
//     ... code ...  // flexlint: allow(raw-thread)
// which is meant to be rare and to carry a justification in a comment.
//
// Usage: flexlint <repo-root>   (exits non-zero and prints one line per
// violation: file:line: [rule] message)

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;  // Repo-relative path.
  size_t line;       // 1-based; 0 for file-level findings.
  std::string rule;
  std::string message;
};

std::vector<Violation> g_violations;

void Report(const std::string& file, size_t line, const std::string& rule,
            const std::string& message) {
  g_violations.push_back({file, line, rule, message});
}

bool HasAllowMarker(const std::string& line, const std::string& rule) {
  return line.find("flexlint: allow(" + rule + ")") != std::string::npos;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True when `token` occurs in `line` not preceded by an identifier
/// character (so "printf(" does not match "snprintf(", which legitimately
/// formats into buffers without touching stdio).
bool ContainsToken(const std::string& line, const std::string& token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool prefixed =
        pos > 0 && (std::isalnum(static_cast<unsigned char>(line[pos - 1])) ||
                    line[pos - 1] == '_');
    if (!prefixed) return true;
    pos += token.size();
  }
  return false;
}

/// The include guard mandated for a repo-relative header path: the path
/// with a leading "src/" stripped, uppercased, non-alphanumerics mapped to
/// '_', prefixed with FLEX_ and suffixed with '_'.
/// src/common/queue.h -> FLEX_COMMON_QUEUE_H_
/// tests/foo_util.h   -> FLEX_TESTS_FOO_UTIL_H_
std::string ExpectedGuard(std::string rel) {
  if (StartsWith(rel, "src/")) rel = rel.substr(4);
  std::string guard = "FLEX_";
  for (char c : rel) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

void CheckHeaderGuard(const std::string& rel,
                      const std::vector<std::string>& lines) {
  const std::string guard = ExpectedGuard(rel);
  std::string found_ifndef;
  size_t ifndef_line = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (StartsWith(line, "#ifndef ")) {
      found_ifndef = line.substr(8);
      // Trim trailing whitespace/comment.
      const size_t end = found_ifndef.find_first_of(" \t/");
      if (end != std::string::npos) found_ifndef = found_ifndef.substr(0, end);
      ifndef_line = i + 1;
      break;
    }
    if (StartsWith(line, "#include") || StartsWith(line, "#pragma")) break;
  }
  if (found_ifndef.empty()) {
    Report(rel, 0, "header-guard", "missing include guard, expected " + guard);
    return;
  }
  if (found_ifndef != guard) {
    Report(rel, ifndef_line, "header-guard",
           "guard is " + found_ifndef + ", expected " + guard);
    return;
  }
  if (ifndef_line >= lines.size() ||
      lines[ifndef_line] != "#define " + guard) {
    Report(rel, ifndef_line, "header-guard",
           "#ifndef " + guard + " not followed by matching #define");
  }
}

void CheckFile(const std::string& rel, const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    Report(rel, 0, "io", "could not open file");
    return;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    lines.push_back(std::move(line));
  }

  const bool in_src = StartsWith(rel, "src/");
  const bool is_header = EndsWith(rel, ".h");
  const bool is_pool_impl = rel == "src/common/thread_pool.h" ||
                            rel == "src/common/thread_pool.cc";
  const bool is_log_sink = rel == "src/common/logging.cc";

  if (is_header) CheckHeaderGuard(rel, lines);

  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const size_t ln = i + 1;

    if (in_src && !is_pool_impl && ContainsToken(line, "std::thread") &&
        !HasAllowMarker(line, "raw-thread")) {
      Report(rel, ln, "raw-thread",
             "construct threads via flex::ThreadPool (common/thread_pool.h)");
    }

    if (in_src && !HasAllowMarker(line, "nondeterminism")) {
      for (const char* token : {"std::rand", "srand", "random_device"}) {
        if (ContainsToken(line, token)) {
          Report(rel, ln, "nondeterminism",
                 std::string(token) +
                     " breaks seed-reproducibility; use flex::Rng "
                     "(common/random.h)");
        }
      }
    }

    if (in_src && !is_log_sink && !HasAllowMarker(line, "stdio")) {
      for (const char* token :
           {"printf", "fprintf", "puts", "std::cout", "std::cerr"}) {
        if (ContainsToken(line, token)) {
          Report(rel, ln, "stdio",
                 std::string(token) +
                     " bypasses the serialized log sink; use FLEX_LOG "
                     "(common/logging.h)");
        }
      }
    }

    if (is_header && ContainsToken(line, "#include <iostream>") &&
        !HasAllowMarker(line, "iostream-header")) {
      Report(rel, ln, "iostream-header",
             "<iostream> in a header injects a static initializer into "
             "every TU; include it in the .cc instead");
    }
  }
}

void WalkTree(const fs::path& root, const std::string& subdir) {
  const fs::path base = root / subdir;
  if (!fs::exists(base)) return;
  for (const auto& entry : fs::recursive_directory_iterator(base)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    const std::string rel =
        fs::relative(entry.path(), root).generic_string();
    CheckFile(rel, entry.path());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: flexlint <repo-root>\n");
    return 2;
  }
  const fs::path root(argv[1]);
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "flexlint: %s has no src/ directory\n", argv[1]);
    return 2;
  }
  WalkTree(root, "src");
  WalkTree(root, "tests");
  for (const auto& v : g_violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!g_violations.empty()) {
    std::fprintf(stderr, "flexlint: %zu violation(s)\n", g_violations.size());
    return 1;
  }
  std::printf("flexlint: clean\n");
  return 0;
}
