// flexlint: the repo's custom invariant linter, run as a ctest test.
//
// Walks src/ and tests/ and enforces the concurrency/determinism contracts
// that keep the benchmark harness honest:
//
//   raw-thread       std::thread may only be constructed inside
//                    common/thread_pool.{h,cc} (the audited pool) — every
//                    other component must submit work to a ThreadPool, so
//                    thread lifetime and shutdown have one implementation.
//                    Scope: src/.
//   nondeterminism   std::rand / srand / std::random_device are banned in
//                    engine code; the datagen and bench layers promise
//                    seed-reproducible runs, so all randomness flows through
//                    flex::Rng (common/random.h). Scope: src/.
//   stdio            printf / fprintf / puts / std::cout / std::cerr are
//                    banned in engine code; use common/logging.h so output
//                    is levelled, serialized, and redirectable. The logging
//                    sink itself (common/logging.cc) is the one exemption.
//                    Scope: src/.
//   header-guard     Every header's include guard must be derived from its
//                    path: src/grape/pie.h -> FLEX_GRAPE_PIE_H_. Scope:
//                    src/ and tests/.
//   iostream-header  #include <iostream> is banned in headers (it injects
//                    the static ios_base initializer into every TU).
//                    Scope: src/ and tests/.
//   discarded-status A statement-position call to a function that returns
//                    flex::Status or flex::Result<...> silently swallows
//                    the error; check it, propagate it, or (void)-cast it.
//                    Function names are harvested from src/ headers (pass
//                    one), then call sites are scanned (pass two). Both
//                    types are also [[nodiscard]], so the compiler catches
//                    direct discards at -Werror; this rule exists so the
//                    invariant is enforced even in files excluded from
//                    -Werror and is visible in lint output. Scope: src/
//                    and tests/.
//   allow-justification  Every flexlint/flexcheck allow() marker must carry
//                    a justification: either same-line text after the
//                    marker or a pure comment line directly above it. A
//                    naked waiver defeats the audit trail the waiver
//                    mechanism exists to create. Scope: src/ and tests/.
//
// A violating line can be waived with a trailing marker naming the rule,
//     ... code ...  // flexlint: allow(raw-thread)
// which is meant to be rare and must carry a justification in a comment
// (enforced by allow-justification).
//
// tests/flexcheck_fixtures/ is excluded from the walk: those trees seed
// deliberate violations for flexcheck's own tests.
//
// Usage: flexlint <repo-root>   (exits non-zero and prints one line per
// violation: file:line: [rule] message)

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;  // Repo-relative path.
  size_t line;       // 1-based; 0 for file-level findings.
  std::string rule;
  std::string message;
};

std::vector<Violation> g_violations;

/// Names of functions declared in src/ headers whose return type is Status
/// or Result<...> (discarded-status pass one).
std::set<std::string> g_status_fns;

/// Names declared in src/ headers with any *other* return type. A name in
/// both sets is ambiguous (e.g. a void AddEdge on one store and a Status
/// AddEdge on another) and is left to the compiler's [[nodiscard]]
/// diagnosis, which resolves overloads properly.
std::set<std::string> g_nonstatus_fns;

void Report(const std::string& file, size_t line, const std::string& rule,
            const std::string& message) {
  g_violations.push_back({file, line, rule, message});
}

bool HasAllowMarker(const std::string& line, const std::string& rule) {
  return line.find("flexlint: allow(" + rule + ")") != std::string::npos;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string TrimLeft(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t");
  return b == std::string::npos ? std::string() : s.substr(b);
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<std::string> ReadLines(const fs::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    lines.push_back(std::move(line));
  }
  return lines;
}

/// True when `token` occurs in `line` not preceded by an identifier
/// character (so "printf(" does not match "snprintf(", which legitimately
/// formats into buffers without touching stdio).
bool ContainsToken(const std::string& line, const std::string& token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool prefixed =
        pos > 0 && (std::isalnum(static_cast<unsigned char>(line[pos - 1])) ||
                    line[pos - 1] == '_');
    if (!prefixed) return true;
    pos += token.size();
  }
  return false;
}

/// The include guard mandated for a repo-relative header path: the path
/// with a leading "src/" stripped, uppercased, non-alphanumerics mapped to
/// '_', prefixed with FLEX_ and suffixed with '_'.
/// src/common/queue.h -> FLEX_COMMON_QUEUE_H_
/// tests/foo_util.h   -> FLEX_TESTS_FOO_UTIL_H_
std::string ExpectedGuard(std::string rel) {
  if (StartsWith(rel, "src/")) rel = rel.substr(4);
  std::string guard = "FLEX_";
  for (char c : rel) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

void CheckHeaderGuard(const std::string& rel,
                      const std::vector<std::string>& lines) {
  const std::string guard = ExpectedGuard(rel);
  std::string found_ifndef;
  size_t ifndef_line = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (StartsWith(line, "#ifndef ")) {
      found_ifndef = line.substr(8);
      // Trim trailing whitespace/comment.
      const size_t end = found_ifndef.find_first_of(" \t/");
      if (end != std::string::npos) found_ifndef = found_ifndef.substr(0, end);
      ifndef_line = i + 1;
      break;
    }
    if (StartsWith(line, "#include") || StartsWith(line, "#pragma")) break;
  }
  if (found_ifndef.empty()) {
    Report(rel, 0, "header-guard", "missing include guard, expected " + guard);
    return;
  }
  if (found_ifndef != guard) {
    Report(rel, ifndef_line, "header-guard",
           "guard is " + found_ifndef + ", expected " + guard);
    return;
  }
  if (ifndef_line >= lines.size() ||
      lines[ifndef_line] != "#define " + guard) {
    Report(rel, ifndef_line, "header-guard",
           "#ifndef " + guard + " not followed by matching #define");
  }
}

/// discarded-status pass one: remembers the name of every function a src/
/// header declares with a Status or Result<...> return type. A line-based
/// heuristic — it sees single-line declarations like
///   Status ArmFromSpec(const std::string& spec);
///   Result<int> RunPieChecked(...);
/// after stripping declaration qualifiers, and ignores everything else.
void CollectStatusReturning(const std::vector<std::string>& lines) {
  for (const std::string& raw : lines) {
    std::string t = TrimLeft(raw);
    for (bool stripped = true; stripped;) {
      stripped = false;
      for (const char* q :
           {"virtual ", "static ", "inline ", "constexpr ", "[[nodiscard]] ",
            "::flex::", "flex::"}) {
        if (StartsWith(t, q)) {
          t = t.substr(std::string(q).size());
          stripped = true;
        }
      }
    }
    size_t name_begin = 0;
    bool returns_status = false;
    if (StartsWith(t, "Status ")) {
      name_begin = 7;
      returns_status = true;
    } else if (StartsWith(t, "Result<")) {
      size_t depth = 1;
      size_t i = 7;
      while (i < t.size() && depth > 0) {
        if (t[i] == '<') ++depth;
        if (t[i] == '>') --depth;
        ++i;
      }
      if (depth != 0 || i >= t.size() || t[i] != ' ') continue;
      name_begin = i + 1;
      returns_status = true;
    } else {
      // Possibly a declaration with another return type: `<type...> name(`.
      // Require at least one type token (only identifier chars and
      // <>,:*&[] allowed) followed by a pure-identifier name and '('.
      const size_t paren = t.find('(');
      if (paren == std::string::npos || paren == 0) continue;
      size_t nb = paren;
      while (nb > 0 && IsIdentChar(t[nb - 1])) --nb;
      // The name must be preceded by whitespace (a return type exists) and
      // the prefix must look like type tokens, not an expression.
      if (nb == paren || nb == 0 || t[nb - 1] != ' ') continue;
      bool type_like = true;
      for (size_t k = 0; k + 1 < nb; ++k) {
        const char c = t[k];
        if (!IsIdentChar(c) && c != '<' && c != '>' && c != ',' &&
            c != ':' && c != '*' && c != '&' && c != '[' && c != ']' &&
            c != ' ') {
          type_like = false;
          break;
        }
      }
      if (!type_like) continue;
      g_nonstatus_fns.insert(t.substr(nb, paren - nb));
      continue;
    }
    size_t name_end = name_begin;
    while (name_end < t.size() && IsIdentChar(t[name_end])) ++name_end;
    if (name_end == name_begin || name_end >= t.size() ||
        t[name_end] != '(') {
      continue;
    }
    if (returns_status) {
      g_status_fns.insert(t.substr(name_begin, name_end - name_begin));
    }
  }
}

void CheckFile(const std::string& rel, const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    Report(rel, 0, "io", "could not open file");
    return;
  }
  in.close();
  const std::vector<std::string> lines = ReadLines(path);

  const bool in_src = StartsWith(rel, "src/");
  const bool in_tests = StartsWith(rel, "tests/");
  const bool is_header = EndsWith(rel, ".h");
  const bool is_pool_impl = rel == "src/common/thread_pool.h" ||
                            rel == "src/common/thread_pool.cc";
  const bool is_log_sink = rel == "src/common/logging.cc";

  if (is_header) CheckHeaderGuard(rel, lines);

  // Tracks whether the next code line begins a new statement (for the
  // discarded-status rule): true after ';', '{', '}', or a label; blank,
  // comment, and preprocessor lines leave it unchanged.
  bool stmt_begin = true;

  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const size_t ln = i + 1;
    const std::string trimmed = TrimLeft(line);

    if (in_src && !is_pool_impl && ContainsToken(line, "std::thread") &&
        !HasAllowMarker(line, "raw-thread")) {
      Report(rel, ln, "raw-thread",
             "construct threads via flex::ThreadPool (common/thread_pool.h)");
    }

    if (in_src && !HasAllowMarker(line, "nondeterminism")) {
      for (const char* token : {"std::rand", "srand", "random_device"}) {
        if (ContainsToken(line, token)) {
          Report(rel, ln, "nondeterminism",
                 std::string(token) +
                     " breaks seed-reproducibility; use flex::Rng "
                     "(common/random.h)");
        }
      }
    }

    if (in_src && !is_log_sink && !HasAllowMarker(line, "stdio")) {
      for (const char* token :
           {"printf", "fprintf", "puts", "std::cout", "std::cerr"}) {
        if (ContainsToken(line, token)) {
          Report(rel, ln, "stdio",
                 std::string(token) +
                     " bypasses the serialized log sink; use FLEX_LOG "
                     "(common/logging.h)");
        }
      }
    }

    if (is_header && ContainsToken(line, "#include <iostream>") &&
        !HasAllowMarker(line, "iostream-header")) {
      Report(rel, ln, "iostream-header",
             "<iostream> in a header injects a static initializer into "
             "every TU; include it in the .cc instead");
    }

    // allow-justification: any allow() marker (this linter's or
    // flexcheck's) must be justified — same-line text after the marker, or
    // a pure comment line directly above that isn't itself a marker.
    {
      const size_t mark = line.find("flexlint: allow(");
      if (mark != std::string::npos) {
        const size_t close = line.find(')', mark);
        bool justified = false;
        if (close != std::string::npos) {
          const std::string after = TrimLeft(line.substr(close + 1));
          // ": ordering is pinned by the caller" — require real prose, not
          // punctuation.
          size_t prose = 0;
          for (char c : after) {
            if (std::isalnum(static_cast<unsigned char>(c))) ++prose;
          }
          if (prose >= 8) justified = true;
        }
        if (!justified && i > 0) {
          const std::string prev = TrimLeft(lines[i - 1]);
          if (StartsWith(prev, "//") &&
              prev.find("flexlint:") == std::string::npos &&
              prev.size() >= 10) {
            justified = true;
          }
        }
        if (!justified) {
          Report(rel, ln, "allow-justification",
                 "allow() waiver without a justification comment on the "
                 "same or preceding line");
        }
      }
    }

    if ((in_src || in_tests) && stmt_begin && !trimmed.empty() &&
        trimmed[0] != '#' &&
        !StartsWith(trimmed, "//") &&
        !HasAllowMarker(line, "discarded-status")) {
      // A candidate discarded call starts the statement with a bare call
      // chain: only identifier characters and ./->/:: separators before
      // the first '('. Anything else (return, =, if, a declaration's
      // return type) introduces whitespace or operators and disqualifies.
      const size_t paren = trimmed.find('(');
      if (paren != std::string::npos && paren > 0) {
        bool bare_chain = true;
        for (size_t k = 0; k < paren; ++k) {
          const char c = trimmed[k];
          if (!IsIdentChar(c) && c != ':' && c != '.' && c != '-' &&
              c != '>') {
            bare_chain = false;
            break;
          }
        }
        if (bare_chain) {
          size_t name_begin = paren;
          while (name_begin > 0 && IsIdentChar(trimmed[name_begin - 1])) {
            --name_begin;
          }
          const std::string callee =
              trimmed.substr(name_begin, paren - name_begin);
          // A trailing consumer on the same chain (.value() forces, .ok()
          // / .status() / .code() inspect) means the result is not
          // discarded. Scan past the call's matching ')' for one.
          bool consumed = false;
          size_t depth = 0;
          size_t after_call = std::string::npos;
          for (size_t k = paren; k < trimmed.size(); ++k) {
            if (trimmed[k] == '(') ++depth;
            if (trimmed[k] == ')' && --depth == 0) {
              after_call = k + 1;
              break;
            }
          }
          if (after_call != std::string::npos) {
            const std::string rest = trimmed.substr(after_call);
            for (const char* c :
                 {".value()", ".ok()", ".status()", ".code()"}) {
              if (rest.find(c) != std::string::npos) consumed = true;
            }
          }
          if (!consumed && g_status_fns.count(callee) != 0 &&
              g_nonstatus_fns.count(callee) == 0) {
            Report(rel, ln, "discarded-status",
                   "result of Status/Result-returning " + callee +
                       "() is discarded; check it, propagate it, or "
                       "(void)-cast it");
          }
        }
      }
    }

    if (!trimmed.empty() && trimmed[0] != '#' && !StartsWith(trimmed, "//")) {
      const char last = trimmed.back();
      stmt_begin = last == ';' || last == '{' || last == '}' || last == ':';
    }
  }
}

std::vector<std::pair<std::string, fs::path>> CollectFiles(
    const fs::path& root, const std::string& subdir) {
  std::vector<std::pair<std::string, fs::path>> files;
  const fs::path base = root / subdir;
  if (!fs::exists(base)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(base)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    const std::string rel =
        fs::relative(entry.path(), root).generic_string();
    // Seeded-violation trees for flexcheck's tests — not real code.
    if (StartsWith(rel, "tests/flexcheck_fixtures/")) continue;
    files.emplace_back(rel, entry.path());
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: flexlint <repo-root>\n");
    return 2;
  }
  const fs::path root(argv[1]);
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "flexlint: %s has no src/ directory\n", argv[1]);
    return 2;
  }
  const auto src_files = CollectFiles(root, "src");
  const auto test_files = CollectFiles(root, "tests");
  for (const auto& [rel, path] : src_files) {
    if (EndsWith(rel, ".h")) CollectStatusReturning(ReadLines(path));
  }
  for (const auto& [rel, path] : src_files) CheckFile(rel, path);
  for (const auto& [rel, path] : test_files) CheckFile(rel, path);
  for (const auto& v : g_violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!g_violations.empty()) {
    std::fprintf(stderr, "flexlint: %zu violation(s)\n", g_violations.size());
    return 1;
  }
  std::printf("flexlint: clean\n");
  return 0;
}
